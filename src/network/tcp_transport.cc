#include "network/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <random>

#include "crypto/schnorr.h"
#include "network/chaos.h"

namespace brdb {

namespace {

/// Handshake nonces. Not part of the determinism invariant (commit
/// decisions never depend on them), so real entropy is fine — and needed,
/// or a recorded handshake could be replayed.
uint64_t RandomNonce() {
  static std::atomic<uint64_t> mix{0x9e3779b97f4a7c15ULL};
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) ^ rd() ^
         mix.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
}

Status MakeNonblocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

void SetNodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool ResolveLoopback(const std::string& host, uint16_t port,
                     sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const std::string h = host.empty() ? "127.0.0.1" : host;
  return inet_pton(AF_INET, h.c_str(), &addr->sin_addr) == 1;
}

/// Run `fn` on the loop thread and wait for it. Must not be called from
/// the loop thread itself. Returns false when the loop is stopped (fn ran
/// inline instead — single-threaded at that point).
bool RunInLoopAndWait(EventLoop* loop, std::function<void()> fn) {
  if (loop->InLoopThread()) {
    fn();
    return true;
  }
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool posted = loop->Post([&] {
    fn();
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  });
  if (!posted) {
    fn();
    return false;
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return true;
}

Frame MakeStatusFrame(const Status& st, uint64_t seq) {
  Frame f;
  f.kind = FrameKind::kStatusResponse;
  f.seq = seq;
  f.body = StatusResponseBody{st, 0}.Encode();
  return f;
}

}  // namespace

// ---------------- TcpServer ----------------

struct TcpServer::Conn {
  enum class Hs { kAwaitHello, kAwaitProof, kReady };

  uint64_t id = 0;
  int fd = -1;
  FrameAssembler assembler;
  std::deque<std::string> sendq;
  size_t sendq_bytes = 0;
  size_t sendq_off = 0;
  bool want_write = false;

  Hs hs = Hs::kAwaitHello;
  HelloBody hello;
  uint64_t server_nonce = 0;
  bool subscribed_decisions = false;
  EventLoop::TimerId hs_timer = EventLoop::kInvalidTimer;

  struct Pending {
    std::function<void(Result<Frame>)> done;
    EventLoop::TimerId deadline_timer = EventLoop::kInvalidTimer;
  };
  std::map<uint64_t, Pending> pending;  ///< server-initiated reverse RPCs

  explicit Conn(size_t max_frame_bytes) : assembler(max_frame_bytes) {}
};

TcpServer::TcpServer(EventLoop* loop, TcpServerOptions options)
    : loop_(loop), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start(uint16_t port) {
  if (started_.load()) return Status::AlreadyExists("server already started");
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  if (!ResolveLoopback("127.0.0.1", port, &addr)) {
    close(fd);
    return Status::Internal("loopback resolve failed");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::Unavailable(std::string("bind: ") + std::strerror(errno));
  }
  if (listen(fd, 128) != 0) {
    close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    close(fd);
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_.store(ntohs(bound.sin_port));
  listen_fd_ = fd;
  dispatch_pool_ = std::make_unique<ThreadPool>(
      options_.dispatch_threads == 0 ? 1 : options_.dispatch_threads);

  Status add = Status::OK();
  RunInLoopAndWait(loop_, [this, &add] {
    add = loop_->AddFd(listen_fd_, false, [this](uint32_t) { OnAcceptable(); });
  });
  if (!add.ok()) {
    close(listen_fd_);
    listen_fd_ = -1;
    dispatch_pool_.reset();
    return add;
  }
  started_.store(true);
  return Status::OK();
}

void TcpServer::Stop() {
  if (!started_.exchange(false)) return;
  RunInLoopAndWait(loop_, [this] {
    if (listen_fd_ >= 0) {
      loop_->RemoveFd(listen_fd_);
      close(listen_fd_);
      listen_fd_ = -1;
    }
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (uint64_t id : ids) {
      CloseConn(id, Status::Unavailable("server stopped"));
    }
  });
  // Join in-flight request handlers: their response Pushes find no
  // connection and drop harmlessly.
  dispatch_pool_.reset();
}

size_t TcpServer::connection_count() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return conn_count_;
}

void TcpServer::OnAcceptable() {
  while (true) {
    int fd = accept4(listen_fd_, nullptr, nullptr,
                     SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the next readiness retries
    }
    SetNodelay(fd);
    auto conn = std::make_shared<Conn>(options_.max_frame_bytes);
    conn->id = next_conn_id_++;
    conn->fd = fd;
    uint64_t id = conn->id;
    Status add =
        loop_->AddFd(fd, false, [this, id](uint32_t ev) { OnConnEvent(id, ev); });
    if (!add.ok()) {
      close(fd);
      continue;
    }
    conn->hs_timer = loop_->AddTimer(options_.handshake_timeout_us, [this, id] {
      auto it = conns_.find(id);
      if (it != conns_.end() && it->second->hs != Conn::Hs::kReady) {
        handshake_rejects_.fetch_add(1, std::memory_order_relaxed);
        CloseConn(id, Status::PermissionDenied("handshake timeout"));
      }
    });
    conns_.emplace(id, std::move(conn));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      conn_count_ = conns_.size();
    }
  }
}

void TcpServer::OnConnEvent(uint64_t conn_id, uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  std::shared_ptr<Conn> conn = it->second;
  if (events & kFdError) {
    CloseConn(conn_id, Status::Unavailable("connection error"));
    return;
  }
  if (events & kFdReadable) {
    char buf[65536];
    while (true) {
      ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) {
        Status fed = conn->assembler.Feed(buf, static_cast<size_t>(n));
        if (!fed.ok()) {
          CloseConn(conn_id, fed);
          return;
        }
        while (true) {
          Frame frame;
          bool have = false;
          Status st = conn->assembler.Next(&frame, &have);
          if (!st.ok()) {
            CloseConn(conn_id, st);
            return;
          }
          if (!have) break;
          HandleFrame(conn, std::move(frame));
          if (conns_.find(conn_id) == conns_.end()) return;  // closed
        }
        continue;
      }
      if (n == 0) {
        CloseConn(conn_id, Status::Unavailable("peer closed connection"));
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(conn_id, Status::Unavailable(std::string("recv: ") +
                                             std::strerror(errno)));
      return;
    }
  }
  if (events & kFdWritable) FlushConn(conn);
}

void TcpServer::HandleHandshakeFrame(const std::shared_ptr<Conn>& conn,
                                     const Frame& frame) {
  auto reject = [&](const Status& why) {
    handshake_rejects_.fetch_add(1, std::memory_order_relaxed);
    AuthResultBody result;
    result.status = why;
    result.server_name = options_.name;
    Frame f;
    f.kind = FrameKind::kAuthResult;
    f.seq = frame.seq;
    f.body = result.Encode();
    SendOnConn(conn, f);  // best-effort courtesy before the close
    CloseConn(conn->id, why);
  };

  if (conn->hs == Conn::Hs::kAwaitHello) {
    if (frame.kind != FrameKind::kHello) {
      reject(Status::PermissionDenied("expected hello before any frame"));
      return;
    }
    auto hello = HelloBody::Decode(frame.body);
    if (!hello.ok()) {
      reject(hello.status());
      return;
    }
    if (hello.value().version != 1) {
      reject(Status::NotSupported("unknown protocol version"));
      return;
    }
    // The dialer must be a registered identity, and a connection claiming
    // peer/orderer purpose must hold that role — a client key cannot
    // impersonate a node to inject relayed network messages.
    auto role = options_.registry->RoleOf(hello.value().name);
    if (!role.ok()) {
      reject(Status::PermissionDenied("unknown identity: " +
                                      hello.value().name));
      return;
    }
    auto purpose = static_cast<ChannelPurpose>(hello.value().purpose);
    if ((purpose == ChannelPurpose::kPeerNode &&
         role.value() != PrincipalRole::kPeer) ||
        (purpose == ChannelPurpose::kOrderer &&
         role.value() != PrincipalRole::kOrderer)) {
      reject(Status::PermissionDenied("purpose does not match role"));
      return;
    }
    conn->hello = std::move(hello).value();
    conn->server_nonce = RandomNonce();
    AuthChallengeBody challenge;
    challenge.server_name = options_.name;
    challenge.nonce = conn->server_nonce;
    challenge.signature =
        Schnorr::Sign(options_.keys,
                      HandshakeTranscript("s", conn->hello.name, options_.name,
                                          conn->hello.nonce,
                                          conn->server_nonce))
            .Serialize();
    Frame f;
    f.kind = FrameKind::kAuthChallenge;
    f.seq = frame.seq;
    f.body = challenge.Encode();
    conn->hs = Conn::Hs::kAwaitProof;
    SendOnConn(conn, f);
    return;
  }

  // kAwaitProof.
  if (frame.kind != FrameKind::kAuthProof) {
    reject(Status::PermissionDenied("expected auth proof"));
    return;
  }
  auto proof = AuthProofBody::Decode(frame.body);
  if (!proof.ok()) {
    reject(proof.status());
    return;
  }
  auto sig = Signature::Deserialize(proof.value().signature);
  if (!sig.ok()) {
    reject(Status::PermissionDenied("malformed signature"));
    return;
  }
  Status verified = options_.registry->VerifySignature(
      conn->hello.name,
      HandshakeTranscript("c", conn->hello.name, options_.name,
                          conn->hello.nonce, conn->server_nonce),
      sig.value());
  if (!verified.ok()) {
    reject(Status::PermissionDenied("channel auth failed: " +
                                    verified.message()));
    return;
  }
  conn->hs = Conn::Hs::kReady;
  if (conn->hs_timer != EventLoop::kInvalidTimer) {
    loop_->CancelTimer(conn->hs_timer);
    conn->hs_timer = EventLoop::kInvalidTimer;
  }
  AuthResultBody result;
  result.status = Status::OK();
  result.server_name = options_.name;
  result.chain_height = options_.chain_height ? options_.chain_height() : 0;
  Frame f;
  f.kind = FrameKind::kAuthResult;
  f.seq = frame.seq;
  f.body = result.Encode();
  SendOnConn(conn, f);
  if (options_.on_authenticated) {
    options_.on_authenticated(conn->id, conn->hello);
  }
}

void TcpServer::HandleFrame(const std::shared_ptr<Conn>& conn, Frame frame) {
  if (conn->hs != Conn::Hs::kReady) {
    HandleHandshakeFrame(conn, frame);
    return;
  }
  switch (frame.kind) {
    case FrameKind::kSubscribeDecisions:
      conn->subscribed_decisions = true;
      SendOnConn(conn, MakeStatusFrame(Status::OK(), frame.seq));
      return;
    case FrameKind::kNetRelay: {
      auto body = NetRelayBody::Decode(frame.body);
      if (body.ok() && options_.on_relay) {
        options_.on_relay(conn->hello.name, body.value());
      }
      return;  // one-way; malformed relays drop like a lost datagram
    }
    case FrameKind::kHello:
    case FrameKind::kAuthChallenge:
    case FrameKind::kAuthProof:
    case FrameKind::kAuthResult:
      CloseConn(conn->id,
                Status::Corruption("handshake frame on established channel"));
      return;
    default:
      break;
  }
  if (IsResponseFrameKind(frame.kind)) {
    auto it = conn->pending.find(frame.seq);
    if (it == conn->pending.end()) return;  // late reply past its deadline
    auto done = std::move(it->second.done);
    if (it->second.deadline_timer != EventLoop::kInvalidTimer) {
      loop_->CancelTimer(it->second.deadline_timer);
    }
    conn->pending.erase(it);
    done(std::move(frame));
    return;
  }
  if (!IsRequestFrameKind(frame.kind)) {
    CloseConn(conn->id, Status::Corruption("unexpected frame kind"));
    return;
  }
  if (!options_.on_request) {
    SendOnConn(conn, MakeStatusFrame(
                         Status::NotSupported("no request handler"), frame.seq));
    return;
  }
  // Answer off the loop thread: a slow query must not stall every other
  // connection this server hosts.
  uint64_t conn_id = conn->id;
  std::string peer_name = conn->hello.name;
  auto purpose = static_cast<ChannelPurpose>(conn->hello.purpose);
  dispatch_pool_->Submit(
      [this, conn_id, peer_name, purpose, frame = std::move(frame)] {
        Frame response = options_.on_request(peer_name, purpose, frame);
        response.seq = frame.seq;
        Push(conn_id, std::move(response));
      });
}

void TcpServer::SendOnConn(const std::shared_ptr<Conn>& conn,
                           const Frame& frame) {
  std::string bytes = EncodeFramed(frame);
  if (conn->sendq_bytes + bytes.size() > options_.max_send_queue_bytes) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  conn->sendq_bytes += bytes.size();
  conn->sendq.push_back(std::move(bytes));
  FlushConn(conn);
}

void TcpServer::FlushConn(const std::shared_ptr<Conn>& conn) {
  while (!conn->sendq.empty()) {
    const std::string& front = conn->sendq.front();
    ssize_t n = send(conn->fd, front.data() + conn->sendq_off,
                     front.size() - conn->sendq_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(conn->id, Status::Unavailable(std::string("send: ") +
                                              std::strerror(errno)));
      return;
    }
    conn->sendq_off += static_cast<size_t>(n);
    conn->sendq_bytes -= static_cast<size_t>(n);
    if (conn->sendq_off == front.size()) {
      conn->sendq.pop_front();
      conn->sendq_off = 0;
    }
  }
  bool want = !conn->sendq.empty();
  if (want != conn->want_write) {
    conn->want_write = want;
    loop_->SetWantWrite(conn->fd, want);
  }
}

void TcpServer::CloseConn(uint64_t conn_id, const Status& why) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  std::shared_ptr<Conn> conn = std::move(it->second);
  conns_.erase(it);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    conn_count_ = conns_.size();
  }
  if (conn->hs_timer != EventLoop::kInvalidTimer) {
    loop_->CancelTimer(conn->hs_timer);
  }
  for (auto& [seq, pending] : conn->pending) {
    if (pending.deadline_timer != EventLoop::kInvalidTimer) {
      loop_->CancelTimer(pending.deadline_timer);
    }
    pending.done(why.ok() ? Status::Unavailable("connection closed") : why);
  }
  loop_->RemoveFd(conn->fd);
  close(conn->fd);
  if (conn->hs == Conn::Hs::kReady && options_.on_closed) {
    options_.on_closed(conn_id, conn->hello.name);
  }
}

void TcpServer::Push(uint64_t conn_id, Frame frame) {
  bool posted = loop_->Post([this, conn_id, frame = std::move(frame)] {
    auto it = conns_.find(conn_id);
    if (it == conns_.end() || it->second->hs != Conn::Hs::kReady) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    SendOnConn(it->second, frame);
  });
  if (!posted) frames_dropped_.fetch_add(1, std::memory_order_relaxed);
}

void TcpServer::PushToDecisionSubscribers(Frame frame) {
  bool posted = loop_->Post([this, frame = std::move(frame)] {
    for (auto& [id, conn] : conns_) {
      if (conn->hs == Conn::Hs::kReady && conn->subscribed_decisions) {
        SendOnConn(conn, frame);
      }
    }
  });
  if (!posted) frames_dropped_.fetch_add(1, std::memory_order_relaxed);
}

void TcpServer::Call(uint64_t conn_id, Frame request, Micros deadline_us,
                     std::function<void(Result<Frame>)> done) {
  bool posted = loop_->Post([this, conn_id, request = std::move(request),
                             deadline_us, done = std::move(done)]() mutable {
    auto it = conns_.find(conn_id);
    if (it == conns_.end() || it->second->hs != Conn::Hs::kReady) {
      done(Status::Unavailable("connection gone"));
      return;
    }
    std::shared_ptr<Conn> conn = it->second;
    uint64_t seq = next_seq_++;
    request.seq = seq;
    std::string bytes = EncodeFramed(request);
    if (conn->sendq_bytes + bytes.size() > options_.max_send_queue_bytes) {
      done(Status::Unavailable("send queue full"));
      return;
    }
    Conn::Pending pending;
    pending.done = std::move(done);
    pending.deadline_timer =
        loop_->AddTimer(deadline_us, [this, conn_id, seq] {
          auto conn_it = conns_.find(conn_id);
          if (conn_it == conns_.end()) return;
          auto pend_it = conn_it->second->pending.find(seq);
          if (pend_it == conn_it->second->pending.end()) return;
          auto cb = std::move(pend_it->second.done);
          conn_it->second->pending.erase(pend_it);
          cb(Status::Unavailable("request deadline exceeded"));
        });
    conn->pending.emplace(seq, std::move(pending));
    conn->sendq_bytes += bytes.size();
    conn->sendq.push_back(std::move(bytes));
    FlushConn(conn);
  });
  if (!posted) done(Status::Unavailable("event loop stopped"));
}

Result<Frame> TcpServer::CallBlocking(uint64_t conn_id, Frame request,
                                      Micros deadline_us) {
  assert(!loop_->InLoopThread() && "blocking call would deadlock the loop");
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Result<Frame> result = Status::Unavailable("unresolved");
  Call(conn_id, std::move(request), deadline_us, [&](Result<Frame> r) {
    std::lock_guard<std::mutex> lock(mu);
    result = std::move(r);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return result;
}

// ---------------- FrameClient ----------------

FrameClient::FrameClient(EventLoop* loop, FrameClientOptions options)
    : loop_(loop),
      options_(std::move(options)),
      assembler_(options_.max_frame_bytes) {}

FrameClient::~FrameClient() { Shutdown(); }

void FrameClient::Connect() {
  loop_->Post([this] {
    if (state_ == State::kIdle) DoConnect();
  });
}

void FrameClient::Shutdown() {
  if (shutdown_.exchange(true)) return;
  RunInLoopAndWait(loop_, [this] {
    if (reconnect_timer_ != EventLoop::kInvalidTimer) {
      loop_->CancelTimer(reconnect_timer_);
      reconnect_timer_ = EventLoop::kInvalidTimer;
    }
    FailConnection(Status::Unavailable("client shut down"));
    state_ = State::kShutdown;
  });
  std::lock_guard<std::mutex> lock(ready_mu_);
  ready_cv_.notify_all();
}

bool FrameClient::WaitReady(Micros timeout_us) {
  std::unique_lock<std::mutex> lock(ready_mu_);
  ready_cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [this] {
    return ready_.load() || shutdown_.load();
  });
  return ready_.load();
}

void FrameClient::DoConnect() {
  if (shutdown_.load() || state_ != State::kIdle) return;
  reconnect_timer_ = EventLoop::kInvalidTimer;
  sockaddr_in addr;
  if (!ResolveLoopback(options_.host, options_.port, &addr)) {
    ScheduleReconnect();
    return;
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    ScheduleReconnect();
    return;
  }
  SetNodelay(fd);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    ScheduleReconnect();
    return;
  }
  fd_ = fd;
  state_ = State::kConnecting;
  Status add =
      loop_->AddFd(fd_, true, [this](uint32_t ev) { OnSocketEvent(ev); });
  if (!add.ok()) {
    close(fd_);
    fd_ = -1;
    state_ = State::kIdle;
    ScheduleReconnect();
    return;
  }
  handshake_timer_ = loop_->AddTimer(options_.connect_timeout_us, [this] {
    handshake_timer_ = EventLoop::kInvalidTimer;
    if (state_ == State::kConnecting) {
      FailConnection(Status::Unavailable("connect timeout"));
    }
  });
  if (rc == 0) OnConnected();
}

void FrameClient::OnSocketEvent(uint32_t events) {
  if (state_ == State::kConnecting) {
    if (events & (kFdWritable | kFdError)) {
      int err = 0;
      socklen_t len = sizeof(err);
      getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        FailConnection(Status::Unavailable(std::string("connect: ") +
                                           std::strerror(err)));
        return;
      }
      OnConnected();
    }
    return;
  }
  if (events & kFdError) {
    FailConnection(Status::Unavailable("connection error"));
    return;
  }
  if (events & kFdReadable) {
    char buf[65536];
    while (fd_ >= 0) {
      ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        if (options_.counters) {
          options_.counters->bytes_received.fetch_add(
              static_cast<uint64_t>(n), std::memory_order_relaxed);
        }
        Status fed = assembler_.Feed(buf, static_cast<size_t>(n));
        if (!fed.ok()) {
          FailConnection(fed);
          return;
        }
        while (true) {
          Frame frame;
          bool have = false;
          Status st = assembler_.Next(&frame, &have);
          if (!st.ok()) {
            FailConnection(st);
            return;
          }
          if (!have) break;
          if (options_.counters) {
            options_.counters->frames_received.fetch_add(
                1, std::memory_order_relaxed);
          }
          OnFrame(std::move(frame));
          if (fd_ < 0) return;  // handler failed the connection
        }
        continue;
      }
      if (n == 0) {
        FailConnection(Status::Unavailable("server closed connection"));
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      FailConnection(
          Status::Unavailable(std::string("recv: ") + std::strerror(errno)));
      return;
    }
  }
  if ((events & kFdWritable) && fd_ >= 0) Flush();
}

void FrameClient::OnConnected() {
  if (handshake_timer_ != EventLoop::kInvalidTimer) {
    loop_->CancelTimer(handshake_timer_);
  }
  loop_->SetWantWrite(fd_, false);
  state_ = State::kAwaitChallenge;
  client_nonce_ = RandomNonce();
  HelloBody hello;
  hello.version = 1;
  hello.name = options_.name;
  hello.purpose = static_cast<uint8_t>(options_.purpose);
  hello.nonce = client_nonce_;
  hello.chain_height = options_.chain_height ? options_.chain_height() : 0;
  Frame f;
  f.kind = FrameKind::kHello;
  f.seq = NextSeq();
  f.body = hello.Encode();
  SendFrameLocked(f);
  handshake_timer_ = loop_->AddTimer(options_.handshake_timeout_us, [this] {
    handshake_timer_ = EventLoop::kInvalidTimer;
    if (state_ == State::kAwaitChallenge || state_ == State::kAwaitResult) {
      FailConnection(Status::Unavailable("handshake timeout"));
    }
  });
}

void FrameClient::HandleHandshakeFrame(const Frame& frame) {
  if (state_ == State::kAwaitChallenge) {
    if (frame.kind == FrameKind::kAuthResult) {
      // Early verdict: the server refused our hello.
      auto result = AuthResultBody::Decode(frame.body);
      FailConnection(result.ok() && !result.value().status.ok()
                         ? result.value().status
                         : Status::PermissionDenied("server refused hello"));
      return;
    }
    if (frame.kind != FrameKind::kAuthChallenge) {
      FailConnection(Status::Corruption("expected auth challenge"));
      return;
    }
    auto challenge = AuthChallengeBody::Decode(frame.body);
    if (!challenge.ok()) {
      FailConnection(challenge.status());
      return;
    }
    // Bind the connection to the *intended* peer identity: a valid
    // signature from some other registered server must not pass.
    if (!options_.expected_server.empty() &&
        challenge.value().server_name != options_.expected_server) {
      FailConnection(Status::PermissionDenied(
          "server identity mismatch: got " + challenge.value().server_name));
      return;
    }
    auto sig = Signature::Deserialize(challenge.value().signature);
    if (!sig.ok()) {
      FailConnection(Status::PermissionDenied("malformed server signature"));
      return;
    }
    server_nonce_ = challenge.value().nonce;
    Status verified = options_.registry->VerifySignature(
        challenge.value().server_name,
        HandshakeTranscript("s", options_.name, challenge.value().server_name,
                            client_nonce_, server_nonce_),
        sig.value());
    if (!verified.ok()) {
      FailConnection(Status::PermissionDenied("server auth failed: " +
                                              verified.message()));
      return;
    }
    AuthProofBody proof;
    proof.signature =
        Schnorr::Sign(options_.keys,
                      HandshakeTranscript("c", options_.name,
                                          challenge.value().server_name,
                                          client_nonce_, server_nonce_))
            .Serialize();
    Frame f;
    f.kind = FrameKind::kAuthProof;
    f.seq = frame.seq;
    f.body = proof.Encode();
    state_ = State::kAwaitResult;
    SendFrameLocked(f);
    return;
  }
  // kAwaitResult.
  if (frame.kind != FrameKind::kAuthResult) {
    FailConnection(Status::Corruption("expected auth result"));
    return;
  }
  auto result = AuthResultBody::Decode(frame.body);
  if (!result.ok()) {
    FailConnection(result.status());
    return;
  }
  if (!result.value().status.ok()) {
    FailConnection(result.value().status);
    return;
  }
  EnterReady();
}

void FrameClient::EnterReady() {
  if (handshake_timer_ != EventLoop::kInvalidTimer) {
    loop_->CancelTimer(handshake_timer_);
    handshake_timer_ = EventLoop::kInvalidTimer;
  }
  state_ = State::kReady;
  backoff_us_ = 0;
  // on_connected runs BEFORE the ready broadcast, so a WaitReady() caller
  // observes its effects (e.g. the transport's decision resubscription is
  // already in the send queue, ordered ahead of any later frame). Send()
  // from the callback works off the loop-thread state, not the flag.
  if (options_.on_connected) options_.on_connected();
  {
    std::lock_guard<std::mutex> lock(ready_mu_);
    ready_.store(true, std::memory_order_release);
    ready_cv_.notify_all();
  }
}

void FrameClient::OnFrame(Frame frame) {
  if (state_ != State::kReady) {
    HandleHandshakeFrame(frame);
    return;
  }
  if (IsResponseFrameKind(frame.kind)) {
    auto it = pending_.find(frame.seq);
    if (it == pending_.end()) return;  // reply past its deadline
    auto done = std::move(it->second.done);
    if (it->second.deadline_timer != EventLoop::kInvalidTimer) {
      loop_->CancelTimer(it->second.deadline_timer);
    }
    pending_.erase(it);
    done(std::move(frame), true);
    return;
  }
  if (IsRequestFrameKind(frame.kind)) {
    // Reverse RPC (the orderer pulls catch-up blocks from the peer that
    // dialed it).
    Frame response =
        options_.on_request
            ? options_.on_request(frame)
            : MakeStatusFrame(Status::NotSupported("no request handler"),
                              frame.seq);
    response.seq = frame.seq;
    SendFrameLocked(response);
    return;
  }
  if (options_.on_event) options_.on_event(frame);
}

void FrameClient::SendFrameLocked(const Frame& frame) {
  std::string bytes = EncodeFramed(frame);
  if (options_.counters) {
    options_.counters->frames_sent.fetch_add(1, std::memory_order_relaxed);
    options_.counters->bytes_sent.fetch_add(bytes.size(),
                                            std::memory_order_relaxed);
  }
  sendq_bytes_ += bytes.size();
  sendq_.push_back(std::move(bytes));
  approx_queue_bytes_.store(sendq_bytes_, std::memory_order_relaxed);
  Flush();
}

void FrameClient::Flush() {
  while (!sendq_.empty()) {
    const std::string& front = sendq_.front();
    ssize_t n = send(fd_, front.data() + sendq_off_,
                     front.size() - sendq_off_, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      FailConnection(
          Status::Unavailable(std::string("send: ") + std::strerror(errno)));
      return;
    }
    sendq_off_ += static_cast<size_t>(n);
    sendq_bytes_ -= static_cast<size_t>(n);
    if (sendq_off_ == front.size()) {
      sendq_.pop_front();
      sendq_off_ = 0;
    }
  }
  approx_queue_bytes_.store(sendq_bytes_, std::memory_order_relaxed);
  loop_->SetWantWrite(fd_, !sendq_.empty());
}

void FrameClient::FailConnection(const Status& why) {
  if (state_ == State::kShutdown) return;
  bool was_ready = state_ == State::kReady;
  if (handshake_timer_ != EventLoop::kInvalidTimer) {
    loop_->CancelTimer(handshake_timer_);
    handshake_timer_ = EventLoop::kInvalidTimer;
  }
  if (fd_ >= 0) {
    loop_->RemoveFd(fd_);
    close(fd_);
    fd_ = -1;
  }
  assembler_ = FrameAssembler(options_.max_frame_bytes);
  sendq_.clear();
  sendq_bytes_ = 0;
  sendq_off_ = 0;
  approx_queue_bytes_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(ready_mu_);
    ready_.store(false, std::memory_order_release);
    ready_cv_.notify_all();
  }
  state_ = State::kIdle;
  // Every pending request had been handed to the connection: its fate is
  // ambiguous (maybe the server processed it), so report sent=true and let
  // the caller's policy decide.
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [seq, p] : pending) {
    if (p.deadline_timer != EventLoop::kInvalidTimer) {
      loop_->CancelTimer(p.deadline_timer);
    }
    p.done(why, true);
  }
  if (was_ready && options_.on_disconnected) options_.on_disconnected(why);
  if (options_.auto_reconnect && !shutdown_.load()) ScheduleReconnect();
}

void FrameClient::ScheduleReconnect() {
  if (shutdown_.load() || reconnect_timer_ != EventLoop::kInvalidTimer) {
    return;
  }
  backoff_us_ = backoff_us_ == 0
                    ? options_.reconnect_min_us
                    : std::min<Micros>(backoff_us_ * 2,
                                       options_.reconnect_max_us);
  reconnect_timer_ = loop_->AddTimer(backoff_us_, [this] {
    reconnect_timer_ = EventLoop::kInvalidTimer;
    if (state_ == State::kIdle) DoConnect();
  });
}

void FrameClient::Call(Frame request, Micros deadline_us,
                       std::function<void(Result<Frame>, bool sent)> done) {
  if (request.seq == 0) request.seq = NextSeq();
  bool posted = loop_->Post([this, request = std::move(request), deadline_us,
                             done = std::move(done)]() mutable {
    if (state_ != State::kReady) {
      done(Status::Unavailable("not connected"), false);
      return;
    }
    if (sendq_bytes_ + request.body.size() + 64 >
        options_.max_send_queue_bytes) {
      done(Status::Unavailable("send queue full (backpressure)"), false);
      return;
    }
    uint64_t seq = request.seq;
    Pending pending;
    pending.done = std::move(done);
    pending.deadline_timer = loop_->AddTimer(deadline_us, [this, seq] {
      auto it = pending_.find(seq);
      if (it == pending_.end()) return;
      auto cb = std::move(it->second.done);
      pending_.erase(it);
      cb(Status::Unavailable("request deadline exceeded"), true);
    });
    pending_.emplace(seq, std::move(pending));
    SendFrameLocked(request);
    // Chaos: an armed connection reset fires after the frame is written —
    // the request may or may not reach the server, so FailConnection fails
    // every pending with sent=true (the ambiguous case the retry policies
    // must handle) and bounded-backoff reconnect kicks in.
    if (options_.fault_injector != nullptr &&
        options_.fault_injector->ConsumeConnectionReset(
            options_.expected_server)) {
      FailConnection(Status::Unavailable("injected connection reset"));
    }
  });
  if (!posted) done(Status::Unavailable("event loop stopped"), false);
}

Result<Frame> FrameClient::CallBlocking(Frame request, Micros deadline_us,
                                        bool* sent) {
  assert(!loop_->InLoopThread() && "blocking call would deadlock the loop");
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool was_sent = false;
  Result<Frame> result = Status::Unavailable("unresolved");
  Call(std::move(request), deadline_us, [&](Result<Frame> r, bool s) {
    std::lock_guard<std::mutex> lock(mu);
    result = std::move(r);
    was_sent = s;
    done = true;
    cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }
  if (sent != nullptr) *sent = was_sent;
  return result;
}

Status FrameClient::Send(Frame frame) {
  // On the loop thread the connection state is authoritative — this lets
  // on_connected (which runs before the ready_ broadcast) enqueue frames.
  if (!Ready() && !(loop_->InLoopThread() && state_ == State::kReady)) {
    return Status::Unavailable("not connected");
  }
  // Backpressure accounts bytes the moment they are ACCEPTED, not when the
  // loop thread gets around to queueing them: posted_bytes_ covers the
  // posted-but-unprocessed window, so a caller outrunning the loop thread
  // hits the cap instead of piling frames into the post queue unbounded.
  const size_t cost = frame.body.size() + 64;
  size_t prior = posted_bytes_.fetch_add(cost, std::memory_order_relaxed);
  if (approx_queue_bytes_.load(std::memory_order_relaxed) + prior + cost >
      options_.max_send_queue_bytes) {
    posted_bytes_.fetch_sub(cost, std::memory_order_relaxed);
    return Status::Unavailable("send queue full (backpressure)");
  }
  if (frame.seq == 0) frame.seq = NextSeq();
  bool posted = loop_->Post([this, cost, frame = std::move(frame)] {
    posted_bytes_.fetch_sub(cost, std::memory_order_relaxed);
    if (state_ != State::kReady) return;
    if (sendq_bytes_ + frame.body.size() + 64 >
        options_.max_send_queue_bytes) {
      return;  // raced full: drop, as promised by the best-effort contract
    }
    SendFrameLocked(frame);
  });
  if (!posted) {
    posted_bytes_.fetch_sub(cost, std::memory_order_relaxed);
    return Status::Unavailable("event loop stopped");
  }
  return Status::OK();
}

// ---------------- TcpTransport ----------------

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)),
      selector_(options_.peers.size(), options_.cooldown_us) {}

TcpTransport::~TcpTransport() {
  for (auto& client : clients_) {
    if (client) client->Shutdown();
  }
  loop_.Stop();
}

Status TcpTransport::Start() {
  BRDB_RETURN_NOT_OK(loop_.Start());
  clients_.reserve(options_.peers.size());
  for (size_t i = 0; i < options_.peers.size(); ++i) {
    const TcpPeerAddress& peer = options_.peers[i];
    FrameClientOptions copts;
    copts.name = options_.client_name;
    copts.keys = options_.client_keys;
    copts.registry = options_.registry;
    copts.purpose = ChannelPurpose::kClientSession;
    copts.host = peer.host;
    copts.port = peer.port;
    copts.expected_server = peer.name;
    copts.max_send_queue_bytes = options_.max_send_queue_bytes;
    copts.counters = &counters_;
    copts.fault_injector = options_.fault_injector;
    copts.on_event = [this, i](const Frame& frame) { OnClientEvent(i, frame); };
    copts.on_connected = [this, i] {
      if (want_decisions_.load(std::memory_order_acquire)) SendSubscribe(i);
    };
    clients_.push_back(std::make_unique<FrameClient>(&loop_, std::move(copts)));
    clients_.back()->Connect();
  }
  return Status::OK();
}

bool TcpTransport::WaitReady(Micros timeout_us) {
  Micros deadline = RealClock::Shared()->NowMicros() + timeout_us;
  for (auto& client : clients_) {
    Micros left = deadline - RealClock::Shared()->NowMicros();
    if (left < 0 || !client->WaitReady(left)) return false;
  }
  return true;
}

std::string TcpTransport::peer_name(size_t peer) const {
  return peer < options_.peers.size() ? options_.peers[peer].name
                                      : std::string();
}

Result<Frame> TcpTransport::CallPeer(size_t peer, const Frame& request,
                                     Micros deadline_us, bool* sent) {
  if (peer >= clients_.size()) {
    if (sent != nullptr) *sent = false;
    return Status::InvalidArgument("peer index out of range");
  }
  Frame req = request;
  req.seq = 0;  // fresh correlation id per attempt
  return clients_[peer]->CallBlocking(std::move(req), deadline_us, sent);
}

Result<std::vector<Status>> TcpTransport::Submit(
    const std::vector<Transaction>& txs) {
  Frame req;
  req.kind = FrameKind::kSubmit;
  SubmitRequestBody body;
  body.encoded_txs.reserve(txs.size());
  for (const Transaction& tx : txs) body.encoded_txs.push_back(tx.Encode());
  req.body = body.Encode();

  Status last = Status::Unavailable("no peers");
  for (size_t attempt = 0; attempt < std::max<size_t>(clients_.size(), 1);
       ++attempt) {
    size_t peer = selector_.Next();
    bool sent = false;
    auto resp = CallPeer(peer, req, options_.submit_timeout_us, &sent);
    if (!resp.ok()) {
      selector_.ReportFailure(peer);
      // A submit that may have reached the peer is ambiguous — retrying
      // elsewhere could double-submit, so surface it to the Session's
      // policy. Only a provably unsent request fails over silently.
      if (sent) return resp.status();
      last = resp.status();
      continue;
    }
    auto decoded = SubmitResponseBody::Decode(resp.value().body);
    if (!decoded.ok()) return decoded.status();
    if (decoded.value().status.ok()) {
      selector_.ReportSuccess(peer);
      if (decoded.value().tx_statuses.size() != txs.size()) {
        return Status::Internal("submit response arity mismatch");
      }
      return std::move(decoded).value().tx_statuses;
    }
    // The server answered without accepting (e.g. "peer not running"):
    // unambiguous, safe to try the next peer.
    last = decoded.value().status;
    selector_.ReportFailure(peer);
  }
  return last;
}

Result<BlockNum> TcpTransport::Height() {
  Frame req;
  req.kind = FrameKind::kHeight;
  Status last = Status::Unavailable("no peers");
  for (size_t attempt = 0; attempt < std::max<size_t>(clients_.size(), 1);
       ++attempt) {
    size_t peer = selector_.Next();
    auto resp = CallPeer(peer, req, options_.request_timeout_us, nullptr);
    if (!resp.ok()) {
      selector_.ReportFailure(peer);
      last = resp.status();
      continue;
    }
    auto decoded = StatusResponseBody::Decode(resp.value().body);
    if (!decoded.ok()) return decoded.status();
    if (decoded.value().status.ok()) {
      selector_.ReportSuccess(peer);
      return static_cast<BlockNum>(decoded.value().height);
    }
    last = decoded.value().status;
    selector_.ReportFailure(peer);
  }
  return last;
}

Result<sql::ResultSet> TcpTransport::Query(const QueryRequest& req,
                                           size_t pin_peer) {
  Frame frame;
  frame.kind = FrameKind::kQuery;
  frame.body =
      QueryRequestBody{req.user, req.sql, req.params, req.provenance}.Encode();

  const bool pinned = pin_peer != kAnyPeer;
  const size_t attempts = pinned ? 1 : std::max<size_t>(clients_.size(), 1);
  Status last = Status::Unavailable("no peers");
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    size_t peer = pinned ? pin_peer : selector_.Next();
    auto resp = CallPeer(peer, frame, options_.request_timeout_us, nullptr);
    if (!resp.ok()) {
      // Reads are idempotent: connection loss or timeout retries on the
      // next peer without ambiguity.
      if (!pinned) selector_.ReportFailure(peer);
      last = resp.status();
      continue;
    }
    auto decoded = ResultResponseBody::Decode(resp.value().body);
    if (!decoded.ok()) return decoded.status();
    if (decoded.value().status.code() == StatusCode::kUnavailable && !pinned) {
      selector_.ReportFailure(peer);
      last = decoded.value().status;
      continue;
    }
    if (!pinned) selector_.ReportSuccess(peer);
    if (!decoded.value().status.ok()) return decoded.value().status;
    sql::ResultSet rs;
    rs.columns = std::move(decoded.value().columns);
    rs.rows = std::move(decoded.value().rows);
    rs.affected = decoded.value().affected;
    return rs;
  }
  return last;
}

Result<sql::PreparedInfo> TcpTransport::Prepare(const std::string& user,
                                                const std::string& sql) {
  Frame frame;
  frame.kind = FrameKind::kPrepare;
  frame.body = PrepareRequestBody{user, sql}.Encode();

  Status last = Status::Unavailable("no peers");
  for (size_t attempt = 0; attempt < std::max<size_t>(clients_.size(), 1);
       ++attempt) {
    size_t peer = selector_.Next();
    auto resp = CallPeer(peer, frame, options_.request_timeout_us, nullptr);
    if (!resp.ok()) {
      selector_.ReportFailure(peer);
      last = resp.status();
      continue;
    }
    auto decoded = PrepareResponseBody::Decode(resp.value().body);
    if (!decoded.ok()) return decoded.status();
    if (decoded.value().status.code() == StatusCode::kUnavailable) {
      selector_.ReportFailure(peer);
      last = decoded.value().status;
      continue;
    }
    selector_.ReportSuccess(peer);
    if (!decoded.value().status.ok()) return decoded.value().status;
    // Same wire-byte hygiene as InProcessTransport::Prepare: never trust
    // network bytes as enum values.
    if (decoded.value().statement_type >
        static_cast<uint8_t>(sql::StatementType::kDropTable)) {
      return Status::Corruption("prepare response: invalid statement type");
    }
    sql::PreparedInfo info;
    info.param_count = static_cast<int>(decoded.value().param_count);
    for (uint8_t t : decoded.value().param_types) {
      info.param_types.push_back(t > static_cast<uint8_t>(ValueType::kText)
                                     ? ValueType::kNull
                                     : static_cast<ValueType>(t));
    }
    info.type =
        static_cast<sql::StatementType>(decoded.value().statement_type);
    return info;
  }
  return last;
}

void TcpTransport::SendSubscribe(size_t peer) {
  Frame f;
  f.kind = FrameKind::kSubscribeDecisions;
  clients_[peer]->Send(std::move(f));
}

uint64_t TcpTransport::Subscribe(DecisionFn fn) {
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(subs_mu_);
    id = next_sub_id_++;
    subscribers_.emplace(id, std::move(fn));
  }
  if (!want_decisions_.exchange(true, std::memory_order_acq_rel)) {
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i]->Ready()) SendSubscribe(i);
    }
  }
  return id;
}

void TcpTransport::Unsubscribe(uint64_t id) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  subscribers_.erase(id);
}

void TcpTransport::OnClientEvent(size_t peer, const Frame& frame) {
  (void)peer;  // the event names its own peer; connections just carry it
  if (frame.kind != FrameKind::kDecisionEvent) return;
  auto decoded = DecisionEventBody::Decode(frame.body);
  if (!decoded.ok()) return;
  TxnNotification n{decoded.value().txid, decoded.value().status,
                    decoded.value().block};
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (const auto& [id, fn] : subscribers_) fn(decoded.value().peer, n);
}

}  // namespace brdb
