// Background builder that mirrors the committed block history into the
// columnar store (storage/columnar.h). The commit thread publishes row
// events (OnInsert/OnDelete on the ColumnStore) and then NotifyCommitted;
// this builder's thread seals immutable segments once enough blocks have
// accumulated, keeping the seal work — payload gathering, dictionary
// building, archive fsync — entirely off the commit path. The only shared
// state is the ColumnStore's event queues, appended by the commit thread
// and trimmed under the store's mutex at seal time.
#ifndef BRDB_LEDGER_HISTORY_BUILDER_H_
#define BRDB_LEDGER_HISTORY_BUILDER_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "storage/columnar.h"
#include "storage/database.h"

namespace brdb {

class HistoryBuilder {
 public:
  struct Options {
    /// Seal a segment once this many blocks are behind the watermark.
    BlockNum segment_blocks = 16;
    /// Archive directory for sealed segment files; empty disables the
    /// on-disk mirror (in-memory columnar only).
    std::string archive_dir;
  };

  HistoryBuilder(Database* db, ColumnStore* store, Options options)
      : db_(db), store_(store), options_(options) {}
  ~HistoryBuilder() { Stop(); }

  HistoryBuilder(const HistoryBuilder&) = delete;
  HistoryBuilder& operator=(const HistoryBuilder&) = delete;

  /// Rebuild the event tail from the version arena after a restart: the
  /// creator/deleter block stamps restored by the checkpoint are the
  /// durable source of truth, so archived segment files never need to be
  /// re-read for correctness. Call before Start(), with `committed` = the
  /// restored chain height.
  void Bootstrap(BlockNum committed);

  void Start();
  void Stop();

  /// Commit-thread hook: all of `block`'s row events have been published
  /// to the store; wake the sealer if enough history has accumulated.
  void NotifyCommitted(BlockNum block);

  /// Block until the watermark covers `target`, force-sealing if needed
  /// (benchmarks and tests quiesce on this before measuring the sealed
  /// path). False if `target` is not committed within the timeout.
  bool WaitForWatermark(BlockNum target, int timeout_ms = 30000);

  /// Blocks behind the commit frontier (the builder-lag gauge).
  BlockNum lag() const {
    BlockNum c = store_->committed();
    BlockNum w = store_->watermark();
    return c > w ? c - w : 0;
  }

  ColumnStore* store() { return store_; }

 private:
  void SealLoop();
  Status SealTo(BlockNum target);

  Database* db_;
  ColumnStore* store_;
  Options options_;

  std::mutex mu_;  ///< guards stop_ and the cv
  std::condition_variable cv_;
  bool stop_ = false;
  /// Serializes SealThrough between the loop and WaitForWatermark without
  /// ever blocking the commit thread (which only touches mu_ briefly).
  std::mutex seal_mu_;
  std::thread thread_;
  bool started_ = false;
};

}  // namespace brdb

#endif  // BRDB_LEDGER_HISTORY_BUILDER_H_
