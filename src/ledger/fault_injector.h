// FaultInjector: crash-injection hooks for the ledger I/O layer.
//
// The durable block store consults an (optional) injector at every record
// write and every fsync, so tests can reproduce the failure modes a real
// disk produces without root privileges or device-mapper games:
//
//   * FailAppend(n)     — the nth append from now fails cleanly before any
//                         byte is written (EIO-style: the store rolls back
//                         and the caller retries). Exercises the retry /
//                         backoff path in DatabaseNode::DrainPendingLocked.
//   * TearAppend(n, k)  — the nth append from now writes only the first k
//                         bytes of the framed record and then "crashes":
//                         the partial record stays on disk and the store
//                         instance wedges itself (every later operation
//                         fails), exactly like a process killed mid-write.
//                         Reopening the directory exercises torn-tail
//                         recovery.
//   * DropFsync(true)   — fsync calls silently do nothing, modelling a
//                         volatile write cache between fflush and the
//                         platters.
//   * FailAllAppends(b) — while set, every append fails cleanly: a
//                         sustained outage (disk full, pulled volume).
//                         Clearing it heals the disk and the retry path
//                         must drain the backlog.
//
// Counters are exposed so tests can assert an injected fault actually
// fired. Thread-safe: the block store appends from the node's intake and
// pipeline threads.
#ifndef BRDB_LEDGER_FAULT_INJECTOR_H_
#define BRDB_LEDGER_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <mutex>

namespace brdb {

class FaultInjector {
 public:
  enum class WriteFault { kNone, kFailClean, kTear };

  /// Arm a clean failure for the nth append from now (1 = the next one).
  void FailAppend(int nth = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    fail_at_ = nth;
    appends_seen_ = 0;
  }

  /// Arm a torn write for the nth append from now: only the first
  /// `byte_offset` bytes of the framed record reach the file.
  void TearAppend(int nth, size_t byte_offset) {
    std::lock_guard<std::mutex> lock(mu_);
    tear_at_ = nth;
    tear_offset_ = byte_offset;
    appends_seen_ = 0;
  }

  void DropFsync(bool drop) { drop_fsync_.store(drop); }

  /// Fail every append cleanly while set — a sustained outage (disk full,
  /// pulled volume) rather than a single transient error. Clearing it
  /// "heals the disk": the store's retry path must then drain the backlog.
  void FailAllAppends(bool fail) { fail_all_appends_.store(fail); }

  /// Called by the store before each append; consumes armed faults.
  WriteFault NextAppendFault(size_t* tear_offset) {
    std::lock_guard<std::mutex> lock(mu_);
    ++appends_seen_;
    if (fail_all_appends_.load()) {
      appends_failed_.fetch_add(1);
      return WriteFault::kFailClean;
    }
    if (fail_at_ > 0 && appends_seen_ == fail_at_) {
      fail_at_ = 0;
      appends_failed_.fetch_add(1);
      return WriteFault::kFailClean;
    }
    if (tear_at_ > 0 && appends_seen_ == tear_at_) {
      tear_at_ = 0;
      *tear_offset = tear_offset_;
      appends_torn_.fetch_add(1);
      return WriteFault::kTear;
    }
    return WriteFault::kNone;
  }

  /// Called by the store at each fsync point; true = skip the fsync.
  bool ShouldDropFsync() {
    if (!drop_fsync_.load()) return false;
    fsyncs_dropped_.fetch_add(1);
    return true;
  }

  uint64_t appends_failed() const { return appends_failed_.load(); }
  uint64_t appends_torn() const { return appends_torn_.load(); }
  uint64_t fsyncs_dropped() const { return fsyncs_dropped_.load(); }

 private:
  std::mutex mu_;
  int fail_at_ = 0;
  int tear_at_ = 0;
  size_t tear_offset_ = 0;
  int appends_seen_ = 0;
  std::atomic<bool> fail_all_appends_{false};
  std::atomic<bool> drop_fsync_{false};
  std::atomic<uint64_t> appends_failed_{0};
  std::atomic<uint64_t> appends_torn_{0};
  std::atomic<uint64_t> fsyncs_dropped_{0};
};

}  // namespace brdb

#endif  // BRDB_LEDGER_FAULT_INJECTOR_H_
