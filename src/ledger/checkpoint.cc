#include "ledger/checkpoint.h"

#include "common/hex.h"
#include "crypto/merkle.h"
#include "wire/codec.h"

namespace brdb {

std::string CheckpointManager::ComputeWriteSetHash(
    BlockNum block, const std::vector<std::string>& txn_write_sets) {
  std::vector<std::string> leaves;
  leaves.reserve(txn_write_sets.size() + 1);
  Encoder header;
  header.PutU64(block);
  leaves.push_back(header.Take());
  for (const auto& ws : txn_write_sets) leaves.push_back(ws);
  MerkleTree tree(leaves);
  return HexEncode(tree.Root());
}

bool CheckpointManager::RecordLocal(BlockNum block, const std::string& hash) {
  std::lock_guard<std::mutex> lock(mu_);
  local_hashes_[block] = hash;
  // Compare against any votes that arrived before we committed the block.
  auto it = peer_votes_.find(block);
  if (it != peer_votes_.end()) {
    for (const auto& [peer, their_hash] : it->second) {
      if (their_hash != hash) {
        divergences_.push_back({peer, block, their_hash, hash,
                                RealClock::Shared()->NowMicros()});
      }
    }
  }
  return block % interval_ == 0;
}

std::optional<CheckpointDivergence> CheckpointManager::ObserveVote(
    const CheckpointVote& vote) {
  if (vote.peer == self_) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  peer_votes_[vote.block][vote.peer] = vote.write_set_hash;
  auto it = local_hashes_.find(vote.block);
  if (it != local_hashes_.end() && it->second != vote.write_set_hash) {
    CheckpointDivergence d{vote.peer, vote.block, vote.write_set_hash,
                           it->second, RealClock::Shared()->NowMicros()};
    divergences_.push_back(d);
    return d;
  }
  return std::nullopt;
}

std::string CheckpointManager::LocalHash(BlockNum block) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = local_hashes_.find(block);
  return it == local_hashes_.end() ? "" : it->second;
}

size_t CheckpointManager::MatchCount(BlockNum block) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto local = local_hashes_.find(block);
  if (local == local_hashes_.end()) return 0;
  auto votes = peer_votes_.find(block);
  if (votes == peer_votes_.end()) return 0;
  size_t matches = 0;
  for (const auto& [peer, hash] : votes->second) {
    if (hash == local->second) ++matches;
  }
  return matches;
}

std::vector<CheckpointDivergence> CheckpointManager::Divergences() const {
  std::lock_guard<std::mutex> lock(mu_);
  return divergences_;
}

std::vector<std::string> CheckpointManager::MissingVoters(
    BlockNum block, const std::vector<std::string>& expected) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (local_hashes_.find(block) == local_hashes_.end()) return {};
  std::vector<std::string> missing;
  auto votes = peer_votes_.find(block);
  for (const auto& peer : expected) {
    if (peer == self_) continue;
    if (votes == peer_votes_.end() ||
        votes->second.find(peer) == votes->second.end()) {
      missing.push_back(peer);
    }
  }
  return missing;
}

}  // namespace brdb
