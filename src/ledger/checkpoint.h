// CheckpointManager: the paper's checkpointing phase (§3.3.4).
//
// After committing a block, each node computes the hash of the block's
// write-set (Merkle root over the committed transactions' deterministic
// write-set encodings) and submits it to the ordering service as a
// checkpoint vote. Votes ride in later blocks; when a node sees votes from
// other peers for a block it committed, it compares them with its own hash.
// A mismatch exposes the faulty/malicious peer (§3.5(3): withholding a
// commit is detected here).
#ifndef BRDB_LEDGER_CHECKPOINT_H_
#define BRDB_LEDGER_CHECKPOINT_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "wire/block.h"

namespace brdb {

/// A divergence event: `peer` reported a different write-set hash for
/// `block` than we computed. `detected_at_us` is the wall-clock instant
/// the mismatch was noticed — the chaos harness subtracts the fault's
/// injection time from it to report detection latency as a metric, not
/// just a boolean.
struct CheckpointDivergence {
  std::string peer;
  BlockNum block = 0;
  std::string their_hash;
  std::string our_hash;
  Micros detected_at_us = 0;
};

class CheckpointManager {
 public:
  /// `interval`: record a checkpoint every N blocks (1 = every block; the
  /// paper notes hashes may be batched over several blocks).
  explicit CheckpointManager(std::string self_name, size_t interval = 1)
      : self_(std::move(self_name)), interval_(interval == 0 ? 1 : interval) {}

  /// Merkle-root hash (hex) over the per-transaction write-set encodings of
  /// one block, in block order. Deterministic across nodes.
  static std::string ComputeWriteSetHash(
      BlockNum block, const std::vector<std::string>& txn_write_sets);

  /// Record our own hash for `block`; returns true when this block index
  /// falls on the checkpoint interval (i.e. a vote should be submitted).
  bool RecordLocal(BlockNum block, const std::string& hash);

  /// Process a peer's vote (signature already verified by the caller).
  /// Returns a divergence record if the peer's hash conflicts with ours.
  std::optional<CheckpointDivergence> ObserveVote(const CheckpointVote& vote);

  /// Our hash for `block` ("" if unknown).
  std::string LocalHash(BlockNum block) const;

  /// Number of peers whose vote for `block` matched ours (excluding us).
  size_t MatchCount(BlockNum block) const;

  /// All divergences observed so far.
  std::vector<CheckpointDivergence> Divergences() const;

  /// Vote-absence audit: peers from `expected` whose vote for `block`
  /// never arrived even though we committed it. A withhold-votes byzantine
  /// peer produces no hash mismatch — its silence is the evidence, and
  /// this is the only place it shows (§3.5). Returns empty if we have not
  /// committed `block` ourselves (we cannot audit what we haven't seen).
  std::vector<std::string> MissingVoters(
      BlockNum block, const std::vector<std::string>& expected) const;

 private:
  std::string self_;
  size_t interval_;
  mutable std::mutex mu_;
  std::map<BlockNum, std::string> local_hashes_;
  std::map<BlockNum, std::map<std::string, std::string>> peer_votes_;
  std::vector<CheckpointDivergence> divergences_;
};

}  // namespace brdb

#endif  // BRDB_LEDGER_CHECKPOINT_H_
