#include "ledger/history_builder.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/logging.h"

namespace brdb {

void HistoryBuilder::Bootstrap(BlockNum committed) {
  // The arena hands back versions in rid (append) order, but pipelined
  // execution appends rows before their block commits, so creator blocks
  // are NOT monotone in rid. The store's tail queues require commit order
  // (blocks nondecreasing), so gather per table and sort by block first.
  struct Event {
    BlockNum block;
    RowId rid;
    bool is_delete;
  };
  std::vector<RowId> rids;
  std::vector<VersionMeta> metas;
  std::vector<Event> events;
  for (Table* table : db_->TablesById()) {
    if (table->db_schema() != kBlockchainSchema) continue;
    table->ScanAllRowIds(&rids);
    table->MetasOf(rids, &metas);
    events.clear();
    for (size_t i = 0; i < rids.size(); ++i) {
      const VersionMeta& m = metas[i];
      if (m.creator_aborted || m.creator_block == 0) continue;
      if (m.creator_block > committed) continue;
      events.push_back(Event{m.creator_block, rids[i], false});
      if (m.deleter_block != 0 && m.deleter_block <= committed) {
        events.push_back(Event{m.deleter_block, rids[i], true});
      }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) {
                       return a.block < b.block;
                     });
    for (const Event& e : events) {
      if (e.is_delete) {
        store_->OnDelete(table, e.rid, e.block);
      } else {
        store_->OnInsert(table, e.rid, e.block);
      }
    }
  }
  store_->SetCommitted(committed);
}

void HistoryBuilder::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  stop_ = false;
  started_ = true;
  thread_ = std::thread([this] { SealLoop(); });
}

void HistoryBuilder::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = false;
  }
}

void HistoryBuilder::NotifyCommitted(BlockNum block) {
  store_->SetCommitted(block);
  if (block >= store_->watermark() + options_.segment_blocks) {
    // Empty critical section pairs with the loop's predicate check so the
    // wakeup cannot fall between check and wait.
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_one();
  }
}

Status HistoryBuilder::SealTo(BlockNum target) {
  std::lock_guard<std::mutex> seal_lock(seal_mu_);
  return store_->SealThrough(target, options_.archive_dir);
}

void HistoryBuilder::SealLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const BlockNum committed = store_->committed();
    if (committed >= store_->watermark() + options_.segment_blocks) {
      lock.unlock();
      Status s = SealTo(committed);
      if (!s.ok()) {
        BRDB_LOG(kWarn, "history") << "seal through " << committed
                                   << " failed: " << s.ToString();
      }
      lock.lock();
      continue;
    }
    cv_.wait_for(lock, std::chrono::milliseconds(200));
  }
}

bool HistoryBuilder::WaitForWatermark(BlockNum target, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (store_->watermark() >= target) return true;
    const BlockNum committed = store_->committed();
    if (committed >= target) {
      SealTo(committed);
      continue;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace brdb
