// BlockStore: the append-only block log each peer maintains (the paper's
// pgBlockstore, §4.2). File-backed when given a directory (a segmented,
// CRC-framed log — see below), or memory-only for tests and benchmarks.
//
// On-disk layout (the ledger IS the redo log, so it must survive kill -9):
//
//   <dir>/0000000001.seg        segment, named by its first block number
//   <dir>/0000000421.seg
//   ...
//
//   segment := magic "BRDBSEG1" | u64 first_block | record*
//   record  := u32 payload_len | u32 crc32(payload) | payload
//
// Segments are capped at `segment_bytes` (the log can exceed RAM and old
// segments can be archived/shipped without touching the active file), and
// each record carries a CRC so a load can tell a *torn tail* — the single
// partially-written record a crash can leave at the end of the last
// segment — from interior corruption. A torn tail is a crash artifact:
// the load truncates it and recovers to the previous block. Any failing
// record that is not the final bytes of the final segment is tampering or
// bit rot and fails the load with kCorruption, as does any record whose
// CRC passes but whose content breaks the hash chain.
//
// Appends are atomic: the framed record is staged in memory and written
// with one fwrite; on a short write the file is truncated back to the
// record boundary, so file and in-memory vector never disagree. Durability
// is governed by FsyncPolicy: kAlways fsyncs every append (crash-safe to
// the last acked block), kBatch every `fsync_batch_blocks` appends and at
// segment rolls, kOff never (benchmark mode — the OS page cache decides).
//
// The store verifies the hash chain on append and on load: a block must
// carry the next sequence number, link to the previous block's hash, and
// hash to its own stored digest.
#ifndef BRDB_LEDGER_BLOCK_STORE_H_
#define BRDB_LEDGER_BLOCK_STORE_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "ledger/fault_injector.h"
#include "wire/block.h"

namespace brdb {

/// When appended blocks are forced to stable storage.
enum class FsyncPolicy {
  kAlways,  ///< fsync after every append (default; crash-safe)
  kBatch,   ///< fsync every fsync_batch_blocks appends and at segment rolls
  kOff,     ///< never fsync (benchmarks; a crash may lose recent blocks)
};

struct BlockStoreOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  /// Roll to a new segment file once the active one reaches this size.
  size_t segment_bytes = 64 * 1024 * 1024;
  /// kBatch: force an fsync every this many appends.
  size_t fsync_batch_blocks = 8;
  /// Crash-injection hooks (tests only; may be null).
  FaultInjector* fault_injector = nullptr;
};

class BlockStore {
 public:
  /// Memory-only store.
  BlockStore() = default;
  ~BlockStore();

  /// File-backed store over directory `dir` (created if absent); loads and
  /// verifies any existing segments, truncating a torn tail record.
  static Result<std::unique_ptr<BlockStore>> Open(
      const std::string& dir, const BlockStoreOptions& options = {});

  /// Verify chain linkage and append. Persists (full record or nothing)
  /// before returning when file-backed.
  Status Append(const Block& block);

  /// Flush + fsync the active segment regardless of policy (shutdown /
  /// checkpoint barrier).
  Status Sync();

  /// Number of stored blocks. Block numbers are 1-based: Height() is the
  /// number of the newest block (0 = empty).
  BlockNum Height() const;

  Result<Block> Get(BlockNum number) const;

  /// Hash of the newest block ("" when empty — the genesis prev-hash).
  std::string LatestHash() const;

  /// Re-verify the whole chain (hash validity + linkage). Used by tests
  /// and by recovery before replay.
  Status VerifyChain() const;

  /// Directory backing this store ("" = memory-only).
  const std::string& path() const { return dir_; }

  /// Blocks recovered by truncating a torn tail at the last load (0 or 1).
  size_t torn_tail_truncations() const { return torn_tail_truncations_; }

 private:
  Status LoadFromDir();
  Status LoadSegment(const std::string& path, bool is_last);

  /// Open (creating if needed) the segment that block `first_block` starts;
  /// requires mu_.
  Status OpenActiveSegmentLocked(BlockNum first_block, bool create);

  /// fsync the active segment unless policy/injection says otherwise;
  /// requires mu_.
  Status MaybeFsyncLocked(bool force);

  mutable std::mutex mu_;
  std::string dir_;  // empty = memory-only
  BlockStoreOptions options_;
  std::vector<Block> blocks_;

  std::FILE* active_ = nullptr;  ///< open segment file (append mode)
  std::string active_path_;
  size_t active_size_ = 0;           ///< bytes in the active segment
  size_t appends_since_fsync_ = 0;   ///< kBatch accounting
  bool wedged_ = false;  ///< an injected torn write "crashed" this store
  size_t torn_tail_truncations_ = 0;
};

}  // namespace brdb

#endif  // BRDB_LEDGER_BLOCK_STORE_H_
