// BlockStore: the append-only block log each peer maintains (the paper's
// pgBlockstore, §4.2). File-backed when given a path (length-prefixed
// encoded blocks, flushed per append so a recovering node can replay), or
// memory-only for tests and benchmarks.
//
// The store verifies the hash chain on append and on load: a block must
// carry the next sequence number, link to the previous block's hash, and
// hash to its own stored digest. Tampered files are detected at load.
#ifndef BRDB_LEDGER_BLOCK_STORE_H_
#define BRDB_LEDGER_BLOCK_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "wire/block.h"

namespace brdb {

class BlockStore {
 public:
  /// Memory-only store.
  BlockStore() = default;

  /// File-backed store; loads and verifies any existing blocks.
  static Result<std::unique_ptr<BlockStore>> Open(const std::string& path);

  /// Verify chain linkage and append. Persists before returning when
  /// file-backed.
  Status Append(const Block& block);

  /// Number of stored blocks. Block numbers are 1-based: Height() is the
  /// number of the newest block (0 = empty).
  BlockNum Height() const;

  Result<Block> Get(BlockNum number) const;

  /// Hash of the newest block ("" when empty — the genesis prev-hash).
  std::string LatestHash() const;

  /// Re-verify the whole chain (hash validity + linkage). Used by tests
  /// and by recovery before replay.
  Status VerifyChain() const;

 private:
  Status LoadFromFile();

  mutable std::mutex mu_;
  std::string path_;  // empty = memory-only
  std::vector<Block> blocks_;
};

}  // namespace brdb

#endif  // BRDB_LEDGER_BLOCK_STORE_H_
