#include "ledger/checkpoint_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "wire/codec.h"
#include "wire/crc32.h"

namespace brdb {

namespace {

constexpr char kCheckpointMagic[8] = {'B', 'R', 'D', 'B', 'C', 'K', 'P', '1'};

// Per-slot tags: the arena is serialized positionally so restored RowIds —
// and therefore the prev/next provenance links — match the originals.
constexpr uint8_t kSlotHole = 0;     // vacuumed / aborted / after-N slot
constexpr uint8_t kSlotLive = 1;     // committed, not deleted by block <= N
constexpr uint8_t kSlotDeleted = 2;  // committed and deleted by block <= N

uint8_t ColumnFlags(const ColumnDef& col) {
  return static_cast<uint8_t>((col.not_null ? 1 : 0) |
                              (col.primary_key ? 2 : 0) |
                              (col.unique ? 4 : 0) | (col.indexed ? 8 : 0));
}

Status FsyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Unavailable("cannot open directory " + dir + " for fsync");
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Unavailable("fsync of directory " + dir + " failed");
  }
  return Status::OK();
}

// Serialize one table's slots 0..num_slots-1, applying the height-N filter.
void EncodeTable(Encoder* enc, Table* table, TxnManager* mgr, BlockNum height,
                 size_t num_slots) {
  const TableSchema& schema = table->schema();
  enc->PutU32(table->id());
  enc->PutString(schema.name());
  enc->PutString(table->db_schema());
  enc->PutU32(static_cast<uint32_t>(schema.columns().size()));
  for (const ColumnDef& col : schema.columns()) {
    enc->PutString(col.name);
    enc->PutU8(static_cast<uint8_t>(col.type));
    enc->PutU8(ColumnFlags(col));
  }
  enc->PutU32(static_cast<uint32_t>(schema.check_constraints().size()));
  for (const std::string& check : schema.check_constraints()) {
    enc->PutString(check);
  }
  enc->PutU64(num_slots);
  for (RowId id = 0; id < num_slots; ++id) {
    if (table->IsDead(id)) {
      enc->PutU8(kSlotHole);
      continue;
    }
    // Read the creator's commit status BEFORE the version metadata:
    // CommitInternal stamps creator/deleter blocks before publishing the
    // commit, so "committed with commit_block <= N" seen here guarantees
    // the stamps read below are final for height N.
    TxnStatusView creator = mgr->StatusViewOf(table->XminOf(id));
    VersionMeta meta = table->MetaOf(id);
    bool committed_by_n =
        !creator.known ||  // GC'd or restored-sentinel: committed long ago
        (creator.state == TxnState::kCommitted &&
         creator.commit_block <= height);
    if (!committed_by_n || meta.creator_aborted ||
        meta.creator_block > height) {
      // In flight, aborted, or created by a later block: replay of the
      // suffix regenerates it (at a new RowId) if it belongs.
      enc->PutU8(kSlotHole);
      continue;
    }
    const bool deleted_by_n =
        meta.deleter_block != 0 && meta.deleter_block <= height;
    if (deleted_by_n) {
      enc->PutU8(kSlotDeleted);
      enc->PutValues(table->ValuesOf(id));
      enc->PutU64(meta.prev_version);
      enc->PutU64(meta.next_version);
      enc->PutU64(meta.creator_block);
      enc->PutU64(meta.deleter_block);
    } else {
      // Live at height N. A deleter or next-version link stamped by a
      // block > N is deliberately dropped: that delete/update happens
      // again during suffix replay.
      enc->PutU8(kSlotLive);
      enc->PutValues(table->ValuesOf(id));
      enc->PutU64(meta.prev_version);
      enc->PutU64(meta.creator_block);
    }
  }
}

}  // namespace

std::string CheckpointWriter::PathFor(BlockNum height) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%010llu.ckpt",
                static_cast<unsigned long long>(height));
  return dir_ + "/" + name;
}

CheckpointWriter::PinnedState CheckpointWriter::Pin(
    Database* db, BlockNum height, std::string block_hash,
    std::string write_set_root) {
  PinnedState pinned;
  pinned.height = height;
  pinned.block_hash = std::move(block_hash);
  pinned.write_set_root = std::move(write_set_root);
  pinned.tables = db->TablesById();
  return pinned;
}

Status CheckpointWriter::Write(Database* db, const PinnedState& pinned) {
  Encoder enc;
  enc.PutBytesRaw(std::string(kCheckpointMagic, sizeof(kCheckpointMagic)));
  enc.PutU64(pinned.height);
  enc.PutString(pinned.block_hash);
  enc.PutString(pinned.write_set_root);
  TableId max_id = 0;
  for (Table* table : pinned.tables) max_id = std::max(max_id, table->id());
  enc.PutU32(max_id + 1);  // next_table_id for FinishRestore
  enc.PutU32(static_cast<uint32_t>(pinned.tables.size()));
  for (Table* table : pinned.tables) {
    // Sample the slot count up front: versions appended after the pin
    // belong to blocks > height and must not be captured.
    EncodeTable(&enc, table, db->txn_manager(), pinned.height,
                table->NumVersions());
  }
  std::string payload = enc.Take();

  Encoder frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  frame.PutBytesRaw(payload);

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::Unavailable("cannot create checkpoint directory " + dir_);
  }
  const std::string final_path = PathFor(pinned.height);
  const std::string tmp_path = final_path + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot create " + tmp_path);
  }
  bool ok = std::fwrite(frame.buffer().data(), 1, frame.buffer().size(), f) ==
                frame.buffer().size() &&
            std::fflush(f) == 0 && ::fsync(fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp_path.c_str());
    return Status::Unavailable("short write to " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Unavailable("cannot rename " + tmp_path);
  }
  return FsyncDirectory(dir_);
}

std::vector<BlockNum> CheckpointWriter::List() const {
  namespace fs = std::filesystem;
  std::vector<BlockNum> heights;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() != ".ckpt") continue;
    heights.push_back(std::strtoull(entry.path().stem().c_str(), nullptr, 10));
  }
  std::sort(heights.begin(), heights.end());
  return heights;
}

Result<std::string> CheckpointWriter::LoadPayload(BlockNum height) const {
  const std::string path = PathFor(height);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no checkpoint file " + path);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};
  char prefix[8];
  if (std::fread(prefix, 1, sizeof(prefix), f) != sizeof(prefix)) {
    return Status::Corruption("checkpoint " + path + " truncated");
  }
  uint32_t len = 0, crc = 0;
  std::memcpy(&len, prefix, 4);
  std::memcpy(&crc, prefix + 4, 4);
  std::string payload(len, '\0');
  if (std::fread(payload.data(), 1, len, f) != len) {
    return Status::Corruption("checkpoint " + path + " truncated");
  }
  if (Crc32(payload) != crc) {
    return Status::Corruption("checkpoint " + path + " failed its CRC");
  }
  return payload;
}

namespace {

Status DecodeHeader(Decoder* dec, StateCheckpoint* out, uint32_t* next_table_id,
                    uint32_t* table_count) {
  std::string magic(sizeof(kCheckpointMagic), '\0');
  for (size_t i = 0; i < magic.size(); ++i) {
    uint8_t b = 0;
    if (!dec->GetU8(&b)) return Status::Corruption("checkpoint too short");
    magic[i] = static_cast<char>(b);
  }
  if (std::memcmp(magic.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return Status::Corruption("bad checkpoint magic");
  }
  uint64_t height = 0;
  if (!dec->GetU64(&height) || !dec->GetString(&out->block_hash) ||
      !dec->GetString(&out->write_set_root) || !dec->GetU32(next_table_id) ||
      !dec->GetU32(table_count)) {
    return Status::Corruption("checkpoint header truncated");
  }
  out->height = height;
  return Status::OK();
}

}  // namespace

Result<StateCheckpoint> CheckpointWriter::ReadHeader(BlockNum height) const {
  auto payload = LoadPayload(height);
  if (!payload.ok()) return payload.status();
  Decoder dec(payload.value());
  StateCheckpoint header;
  uint32_t next_table_id = 0, table_count = 0;
  BRDB_RETURN_NOT_OK(DecodeHeader(&dec, &header, &next_table_id, &table_count));
  return header;
}

Result<StateCheckpoint> CheckpointWriter::Restore(BlockNum height,
                                                  Database* db) const {
  auto payload = LoadPayload(height);
  if (!payload.ok()) return payload.status();
  Decoder dec(payload.value());
  StateCheckpoint header;
  uint32_t next_table_id = 0, table_count = 0;
  BRDB_RETURN_NOT_OK(DecodeHeader(&dec, &header, &next_table_id, &table_count));

  db->ResetForRestore();
  for (uint32_t t = 0; t < table_count; ++t) {
    uint32_t table_id = 0, ncols = 0;
    std::string name, db_schema;
    if (!dec.GetU32(&table_id) || !dec.GetString(&name) ||
        !dec.GetString(&db_schema) || !dec.GetU32(&ncols)) {
      return Status::Corruption("checkpoint table header truncated");
    }
    std::vector<ColumnDef> columns;
    columns.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      ColumnDef col;
      uint8_t type = 0, flags = 0;
      if (!dec.GetString(&col.name) || !dec.GetU8(&type) ||
          !dec.GetU8(&flags)) {
        return Status::Corruption("checkpoint column truncated");
      }
      col.type = static_cast<ValueType>(type);
      col.not_null = flags & 1;
      col.primary_key = flags & 2;
      col.unique = flags & 4;
      col.indexed = flags & 8;
      columns.push_back(std::move(col));
    }
    TableSchema schema(name, std::move(columns));
    uint32_t nchecks = 0;
    if (!dec.GetU32(&nchecks)) {
      return Status::Corruption("checkpoint checks truncated");
    }
    for (uint32_t c = 0; c < nchecks; ++c) {
      std::string check;
      if (!dec.GetString(&check)) {
        return Status::Corruption("checkpoint check truncated");
      }
      schema.AddCheckConstraint(std::move(check));
    }
    auto table = db->RestoreTable(table_id, std::move(schema), db_schema);
    if (!table.ok()) return table.status();

    uint64_t num_slots = 0;
    if (!dec.GetU64(&num_slots)) {
      return Status::Corruption("checkpoint slot count truncated");
    }
    for (uint64_t s = 0; s < num_slots; ++s) {
      uint8_t tag = 0;
      if (!dec.GetU8(&tag)) {
        return Status::Corruption("checkpoint slot truncated");
      }
      if (tag == kSlotHole) {
        table.value()->RestoreHole();
        continue;
      }
      Row values;
      uint64_t prev = 0, next = kInvalidRowId, creator = 0, deleter = 0;
      Status vs = dec.GetValues(&values);
      if (!vs.ok() || !dec.GetU64(&prev)) {
        return Status::Corruption("checkpoint row truncated");
      }
      if (tag == kSlotDeleted) {
        if (!dec.GetU64(&next) || !dec.GetU64(&creator) ||
            !dec.GetU64(&deleter)) {
          return Status::Corruption("checkpoint row truncated");
        }
      } else if (tag == kSlotLive) {
        if (!dec.GetU64(&creator)) {
          return Status::Corruption("checkpoint row truncated");
        }
      } else {
        return Status::Corruption("unknown checkpoint slot tag");
      }
      table.value()->RestoreVersion(std::move(values), prev, next, creator,
                                    deleter);
    }
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("checkpoint has trailing bytes");
  }
  db->FinishRestore(next_table_id);
  return header;
}

}  // namespace brdb
