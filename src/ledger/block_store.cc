#include "ledger/block_store.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace brdb {

Result<std::unique_ptr<BlockStore>> BlockStore::Open(const std::string& path) {
  auto store = std::make_unique<BlockStore>();
  store->path_ = path;
  Status st = store->LoadFromFile();
  if (!st.ok()) return st;
  return store;
}

Status BlockStore::LoadFromFile() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // fresh store
  Status result = Status::OK();
  for (;;) {
    uint32_t len = 0;
    size_t n = std::fread(&len, 1, 4, f);
    if (n == 0) break;  // clean EOF
    if (n != 4) {
      result = Status::Corruption("block store: truncated length prefix");
      break;
    }
    std::string buf(len, '\0');
    if (std::fread(buf.data(), 1, len, f) != len) {
      result = Status::Corruption("block store: truncated block body");
      break;
    }
    auto block = Block::Decode(buf);
    if (!block.ok()) {
      result = block.status();
      break;
    }
    // Verify chain linkage while loading.
    const Block& b = block.value();
    if (!b.HashIsValid()) {
      result = Status::Corruption("block store: block " +
                                  std::to_string(b.number()) +
                                  " hash mismatch (tampered?)");
      break;
    }
    if (b.number() != blocks_.size() + 1) {
      result = Status::Corruption("block store: unexpected sequence number");
      break;
    }
    if (!blocks_.empty() && b.prev_hash() != blocks_.back().hash()) {
      result = Status::Corruption("block store: broken hash chain at block " +
                                  std::to_string(b.number()));
      break;
    }
    blocks_.push_back(std::move(block).value());
  }
  std::fclose(f);
  return result;
}

Status BlockStore::Append(const Block& block) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!block.HashIsValid()) {
    return Status::Corruption("refusing to append block with invalid hash");
  }
  if (block.number() != blocks_.size() + 1) {
    return Status::InvalidArgument(
        "block " + std::to_string(block.number()) + " out of sequence, have " +
        std::to_string(blocks_.size()));
  }
  if (!blocks_.empty() && block.prev_hash() != blocks_.back().hash()) {
    return Status::Corruption("block " + std::to_string(block.number()) +
                              " does not extend the current chain");
  }
  if (!path_.empty()) {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    if (f == nullptr) {
      return Status::Unavailable("cannot open block store file " + path_);
    }
    std::string bytes = block.Encode();
    uint32_t len = static_cast<uint32_t>(bytes.size());
    bool ok = std::fwrite(&len, 1, 4, f) == 4 &&
              std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    std::fflush(f);
    std::fclose(f);
    if (!ok) return Status::Unavailable("short write to block store");
  }
  blocks_.push_back(block);
  return Status::OK();
}

BlockNum BlockStore::Height() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

Result<Block> BlockStore::Get(BlockNum number) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (number == 0 || number > blocks_.size()) {
    return Status::NotFound("no block " + std::to_string(number));
  }
  return blocks_[number - 1];
}

std::string BlockStore::LatestHash() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.empty() ? "" : blocks_.back().hash();
}

Status BlockStore::VerifyChain() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prev;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (!b.HashIsValid()) {
      return Status::Corruption("block " + std::to_string(b.number()) +
                                " content does not match its hash");
    }
    if (b.number() != i + 1) {
      return Status::Corruption("block sequence gap at index " +
                                std::to_string(i));
    }
    if (i > 0 && b.prev_hash() != prev) {
      return Status::Corruption("hash chain broken at block " +
                                std::to_string(b.number()));
    }
    prev = b.hash();
  }
  return Status::OK();
}

}  // namespace brdb
