#include "ledger/block_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>

#include "common/logging.h"
#include "wire/codec.h"
#include "wire/crc32.h"

namespace brdb {

namespace {

constexpr char kSegmentMagic[8] = {'B', 'R', 'D', 'B', 'S', 'E', 'G', '1'};
constexpr size_t kSegmentHeaderBytes = 16;  // magic + u64 first_block
constexpr size_t kRecordPrefixBytes = 8;    // u32 len + u32 crc
// A length prefix beyond this is garbage (a torn prefix or corruption),
// not a real block; refuse to allocate it.
constexpr uint32_t kMaxRecordBytes = 256 * 1024 * 1024;

std::string SegmentName(BlockNum first_block) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%010llu.seg",
                static_cast<unsigned long long>(first_block));
  return buf;
}

std::string FrameRecord(const std::string& payload) {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(payload.size()));
  enc.PutU32(Crc32(payload));
  enc.PutBytesRaw(payload);
  return enc.Take();
}

}  // namespace

BlockStore::~BlockStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ != nullptr) {
    std::fflush(active_);
    if (options_.fsync_policy != FsyncPolicy::kOff) {
      ::fsync(fileno(active_));
    }
    std::fclose(active_);
    active_ = nullptr;
  }
}

Result<std::unique_ptr<BlockStore>> BlockStore::Open(
    const std::string& dir, const BlockStoreOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::exists(dir, ec) && !fs::is_directory(dir, ec)) {
    return Status::InvalidArgument(
        "block store path " + dir +
        " is not a directory (the store is a segmented log)");
  }
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("cannot create block store directory " + dir +
                               ": " + ec.message());
  }
  auto store = std::make_unique<BlockStore>();
  store->dir_ = dir;
  store->options_ = options;
  Status st = store->LoadFromDir();
  if (!st.ok()) return st;
  return store;
}

Status BlockStore::LoadFromDir() {
  namespace fs = std::filesystem;
  std::vector<std::string> segments;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".seg") {
      segments.push_back(entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());
  for (size_t i = 0; i < segments.size(); ++i) {
    BRDB_RETURN_NOT_OK(LoadSegment(segments[i], i + 1 == segments.size()));
  }
  // Reattach to the newest surviving segment so appends continue there.
  for (auto it = segments.rbegin(); it != segments.rend(); ++it) {
    if (!fs::exists(*it, ec)) continue;  // removed as a torn artifact
    active_path_ = *it;
    active_ = std::fopen(active_path_.c_str(), "ab");
    if (active_ == nullptr) {
      return Status::Unavailable("cannot reopen segment " + active_path_);
    }
    active_size_ = static_cast<size_t>(fs::file_size(active_path_, ec));
    break;
  }
  return Status::OK();
}

Status BlockStore::LoadSegment(const std::string& path, bool is_last) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const size_t file_size = static_cast<size_t>(fs::file_size(path, ec));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open segment " + path);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() {
      if (f != nullptr) std::fclose(f);
    }
  } closer{f};

  // A crash during a segment roll can leave a final segment with a partial
  // (or missing) header; it holds no records, so drop it and recover.
  auto torn_tail = [&](size_t keep_bytes, const char* what) -> Status {
    closer.f = nullptr;
    std::fclose(f);
    ++torn_tail_truncations_;
    BRDB_LOG(kWarn, "blockstore")
        << "truncating torn tail (" << what << ") in " << path << " at byte "
        << keep_bytes << "; recovered height " << blocks_.size();
    if (keep_bytes == 0) {
      fs::remove(path, ec);
    } else if (::truncate(path.c_str(), static_cast<off_t>(keep_bytes)) != 0) {
      return Status::Unavailable("cannot truncate torn tail of " + path);
    }
    return Status::OK();
  };

  char header[kSegmentHeaderBytes];
  if (std::fread(header, 1, sizeof(header), f) != sizeof(header)) {
    if (is_last) return torn_tail(0, "partial segment header");
    return Status::Corruption("block store: truncated header in interior " +
                              path);
  }
  if (std::memcmp(header, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::Corruption("block store: bad segment magic in " + path);
  }
  uint64_t first_block = 0;
  std::memcpy(&first_block, header + sizeof(kSegmentMagic), 8);
  if (first_block != blocks_.size() + 1) {
    return Status::Corruption(
        "block store: segment " + path + " starts at block " +
        std::to_string(first_block) + ", expected " +
        std::to_string(blocks_.size() + 1));
  }

  size_t pos = kSegmentHeaderBytes;
  for (;;) {
    const size_t record_start = pos;
    char prefix[kRecordPrefixBytes];
    size_t n = std::fread(prefix, 1, sizeof(prefix), f);
    if (n == 0) break;  // clean end of segment
    if (n != sizeof(prefix)) {
      if (is_last) return torn_tail(record_start, "partial record prefix");
      return Status::Corruption("block store: truncated record prefix in " +
                                path);
    }
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, prefix, 4);
    std::memcpy(&crc, prefix + 4, 4);
    if (len > kMaxRecordBytes) {
      // Only a torn prefix at the very tail can legitimately decode to a
      // nonsense length.
      if (is_last && record_start + kRecordPrefixBytes >= file_size) {
        return torn_tail(record_start, "garbage length prefix");
      }
      return Status::Corruption("block store: absurd record length in " +
                                path);
    }
    std::string payload(len, '\0');
    if (std::fread(payload.data(), 1, len, f) != len) {
      if (is_last) return torn_tail(record_start, "partial record body");
      return Status::Corruption("block store: truncated record body in " +
                                path);
    }
    pos = record_start + kRecordPrefixBytes + len;
    if (Crc32(payload) != crc) {
      // A CRC failure on the very last bytes of the last segment is the
      // signature of a torn write (the prefix landed, the body did not
      // finish). The same failure anywhere else — or followed by more
      // records — is interior corruption and must fail loudly.
      if (is_last && pos >= file_size) {
        return torn_tail(record_start, "record CRC mismatch at tail");
      }
      return Status::Corruption("block store: record CRC mismatch in " + path +
                                " at byte " + std::to_string(record_start));
    }
    // CRC passed: the record was durably and completely written, so any
    // failure from here on is tampering, never a crash artifact.
    auto block = Block::Decode(payload);
    if (!block.ok()) {
      return Status::Corruption("block store: undecodable block in " + path +
                                ": " + block.status().ToString());
    }
    const Block& b = block.value();
    if (!b.HashIsValid()) {
      return Status::Corruption("block store: block " +
                                std::to_string(b.number()) +
                                " hash mismatch (tampered?)");
    }
    if (b.number() != blocks_.size() + 1) {
      return Status::Corruption("block store: unexpected sequence number");
    }
    if (!blocks_.empty() && b.prev_hash() != blocks_.back().hash()) {
      return Status::Corruption("block store: broken hash chain at block " +
                                std::to_string(b.number()));
    }
    blocks_.push_back(std::move(block).value());
  }
  return Status::OK();
}

Status BlockStore::OpenActiveSegmentLocked(BlockNum first_block, bool create) {
  active_path_ = dir_ + "/" + SegmentName(first_block);
  active_ = std::fopen(active_path_.c_str(), "ab");
  if (active_ == nullptr) {
    return Status::Unavailable("cannot open segment " + active_path_);
  }
  active_size_ = 0;
  if (create) {
    Encoder enc;
    enc.PutBytesRaw(std::string(kSegmentMagic, sizeof(kSegmentMagic)));
    enc.PutU64(first_block);
    const std::string& header = enc.buffer();
    if (std::fwrite(header.data(), 1, header.size(), active_) !=
            header.size() ||
        std::fflush(active_) != 0) {
      std::fclose(active_);
      active_ = nullptr;
      return Status::Unavailable("cannot write segment header to " +
                                 active_path_);
    }
    active_size_ = header.size();
  }
  return Status::OK();
}

Status BlockStore::MaybeFsyncLocked(bool force) {
  if (active_ == nullptr) return Status::OK();
  bool due = force;
  if (!due) {
    switch (options_.fsync_policy) {
      case FsyncPolicy::kAlways:
        due = true;
        break;
      case FsyncPolicy::kBatch: {
        size_t batch = std::max<size_t>(1, options_.fsync_batch_blocks);
        due = ++appends_since_fsync_ >= batch;
        break;
      }
      case FsyncPolicy::kOff:
        break;
    }
  }
  if (!due) return Status::OK();
  appends_since_fsync_ = 0;
  if (options_.fault_injector != nullptr &&
      options_.fault_injector->ShouldDropFsync()) {
    return Status::OK();  // simulated volatile write cache
  }
  if (::fsync(fileno(active_)) != 0) {
    return Status::Unavailable("fsync failed on " + active_path_);
  }
  return Status::OK();
}

Status BlockStore::Append(const Block& block) {
  std::lock_guard<std::mutex> lock(mu_);
  if (wedged_) {
    return Status::Unavailable(
        "block store wedged by an injected torn write (simulated crash)");
  }
  if (!block.HashIsValid()) {
    return Status::Corruption("refusing to append block with invalid hash");
  }
  if (block.number() != blocks_.size() + 1) {
    return Status::InvalidArgument(
        "block " + std::to_string(block.number()) + " out of sequence, have " +
        std::to_string(blocks_.size()));
  }
  if (!blocks_.empty() && block.prev_hash() != blocks_.back().hash()) {
    return Status::Corruption("block " + std::to_string(block.number()) +
                              " does not extend the current chain");
  }
  if (!dir_.empty()) {
    if (active_ == nullptr) {
      BRDB_RETURN_NOT_OK(OpenActiveSegmentLocked(block.number(), true));
    } else if (active_size_ >= options_.segment_bytes) {
      // Roll: seal the full segment (fsynced unless the policy is kOff so
      // sealed segments are always stable) and start the next one.
      BRDB_RETURN_NOT_OK(
          MaybeFsyncLocked(options_.fsync_policy != FsyncPolicy::kOff));
      std::fclose(active_);
      active_ = nullptr;
      BRDB_RETURN_NOT_OK(OpenActiveSegmentLocked(block.number(), true));
    }

    // Stage the full framed record and append it with a single write, so
    // the file either gains the whole record or (after rollback) nothing.
    std::string record = FrameRecord(block.Encode());
    if (options_.fault_injector != nullptr) {
      size_t tear_offset = 0;
      switch (options_.fault_injector->NextAppendFault(&tear_offset)) {
        case FaultInjector::WriteFault::kNone:
          break;
        case FaultInjector::WriteFault::kFailClean:
          return Status::Unavailable("injected append failure");
        case FaultInjector::WriteFault::kTear: {
          // Simulated crash mid-write: leave the partial record on disk
          // and wedge the store — only a reopen (process restart) may
          // touch this directory again.
          size_t partial = std::min(tear_offset, record.size());
          std::fwrite(record.data(), 1, partial, active_);
          std::fflush(active_);
          wedged_ = true;
          return Status::Unavailable("injected torn write (simulated crash)");
        }
      }
    }
    bool ok =
        std::fwrite(record.data(), 1, record.size(), active_) ==
            record.size() &&
        std::fflush(active_) == 0;
    if (!ok) {
      // Roll the partial record back; "ab" mode writes always land at EOF,
      // so after the truncate the next append starts at the boundary.
      if (::ftruncate(fileno(active_), static_cast<off_t>(active_size_)) !=
          0) {
        wedged_ = true;  // boundary unknown: refuse further appends
        return Status::Unavailable(
            "short write AND failed rollback; store needs reopen");
      }
      return Status::Unavailable("short write to block store (rolled back)");
    }
    active_size_ += record.size();
    BRDB_RETURN_NOT_OK(
        MaybeFsyncLocked(options_.fsync_policy == FsyncPolicy::kAlways));
  }
  blocks_.push_back(block);
  return Status::OK();
}

Status BlockStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ == nullptr) return Status::OK();
  if (std::fflush(active_) != 0) {
    return Status::Unavailable("flush failed on " + active_path_);
  }
  return MaybeFsyncLocked(true);
}

BlockNum BlockStore::Height() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

Result<Block> BlockStore::Get(BlockNum number) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (number == 0 || number > blocks_.size()) {
    return Status::NotFound("no block " + std::to_string(number));
  }
  return blocks_[number - 1];
}

std::string BlockStore::LatestHash() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.empty() ? "" : blocks_.back().hash();
}

Status BlockStore::VerifyChain() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string prev;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (!b.HashIsValid()) {
      return Status::Corruption("block " + std::to_string(b.number()) +
                                " content does not match its hash");
    }
    if (b.number() != i + 1) {
      return Status::Corruption("block sequence gap at index " +
                                std::to_string(i));
    }
    if (i > 0 && b.prev_hash() != prev) {
      return Status::Corruption("hash chain broken at block " +
                                std::to_string(b.number()));
    }
    prev = b.hash();
  }
  return Status::OK();
}

}  // namespace brdb
