#include "storage/columnar.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "wire/codec.h"
#include "wire/crc32.h"

namespace brdb {

namespace {

constexpr char kColumnarMagic[8] = {'B', 'R', 'D', 'B', 'C', 'O', 'L', '1'};
constexpr size_t kRecordPrefixBytes = 8;  // u32 len + u32 crc
constexpr uint32_t kMaxRecordBytes = 1024u * 1024u * 1024u;

std::string SegmentFileName(BlockNum first, BlockNum last) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "colseg-%010llu-%010llu.col",
                static_cast<unsigned long long>(first),
                static_cast<unsigned long long>(last));
  return buf;
}

}  // namespace

Value ColumnChunk::At(size_t row) const {
  if (nulls[row] != 0) return Value::Null();
  switch (type) {
    case ValueType::kInt:
      return Value::Int(ints[row]);
    case ValueType::kBool:
      return Value::Bool(ints[row] != 0);
    case ValueType::kDouble:
      return was_int[row] != 0 ? Value::Int(ints[row])
                               : Value::Double(doubles[row]);
    case ValueType::kText:
      return Value::Text(dict[codes[row]]);
    default:
      return raws[row];
  }
}

std::shared_ptr<const TableSegment> BuildSegment(
    const Table& table, BlockNum first_block, BlockNum last_block,
    std::vector<std::pair<RowId, BlockNum>> inserts,
    std::vector<DeleteEvent> deletes) {
  auto seg = std::make_shared<TableSegment>();
  seg->table_name = table.schema().name();
  seg->table_id = table.id();
  seg->first_block = first_block;
  seg->last_block = last_block;

  std::sort(inserts.begin(), inserts.end());
  std::sort(deletes.begin(), deletes.end(),
            [](const DeleteEvent& a, const DeleteEvent& b) {
              return a.rid < b.rid;
            });
  seg->deletes = std::move(deletes);

  const size_t n = inserts.size();
  seg->rids.reserve(n);
  seg->creator_blocks.reserve(n);
  for (const auto& [rid, block] : inserts) {
    seg->rids.push_back(rid);
    seg->creator_blocks.push_back(block);
  }

  const auto& columns = table.schema().columns();
  seg->columns.resize(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    ColumnChunk& chunk = seg->columns[c];
    chunk.type = columns[c].type;
    chunk.nulls.assign(n, 0);
    switch (chunk.type) {
      case ValueType::kInt:
      case ValueType::kBool:
        chunk.ints.assign(n, 0);
        break;
      case ValueType::kDouble:
        chunk.ints.assign(n, 0);
        chunk.doubles.assign(n, 0);
        chunk.was_int.assign(n, 0);
        break;
      case ValueType::kText:
        chunk.codes.assign(n, 0);
        break;
      default:
        chunk.raws.assign(n, Value::Null());
        break;
    }
    // Dictionary pass for text columns: collect, sort, unique, then code.
    std::vector<std::string> texts;
    for (size_t i = 0; i < n; ++i) {
      const Value& v = table.ValuesOf(seg->rids[i])[c];
      if (v.is_null()) {
        chunk.nulls[i] = 1;
        chunk.has_null = true;
        continue;
      }
      if (chunk.min.is_null() || v.Compare(chunk.min) < 0) chunk.min = v;
      if (chunk.max.is_null() || v.Compare(chunk.max) > 0) chunk.max = v;
      switch (chunk.type) {
        case ValueType::kInt:
          chunk.ints[i] = v.AsInt();
          break;
        case ValueType::kBool:
          chunk.ints[i] = v.AsBool() ? 1 : 0;
          break;
        case ValueType::kDouble:
          if (v.type() == ValueType::kInt) {
            chunk.was_int[i] = 1;
            chunk.ints[i] = v.AsInt();
            chunk.doubles[i] = static_cast<double>(v.AsInt());
          } else {
            chunk.doubles[i] = v.AsDouble();
          }
          break;
        case ValueType::kText:
          texts.push_back(v.AsText());
          break;
        default:
          chunk.raws[i] = v;
          break;
      }
    }
    if (chunk.type == ValueType::kText) {
      std::sort(texts.begin(), texts.end());
      texts.erase(std::unique(texts.begin(), texts.end()), texts.end());
      chunk.dict = std::move(texts);
      for (size_t i = 0; i < n; ++i) {
        if (chunk.nulls[i] != 0) continue;
        const std::string& s = table.ValuesOf(seg->rids[i])[c].AsText();
        auto it =
            std::lower_bound(chunk.dict.begin(), chunk.dict.end(), s);
        chunk.codes[i] = static_cast<uint32_t>(it - chunk.dict.begin());
      }
    }
  }
  return seg;
}

// ---------------- serialization ----------------

void TableSegment::EncodeTo(std::string* out) const {
  Encoder enc;
  enc.PutString(table_name);
  enc.PutU32(table_id);
  enc.PutU64(first_block);
  enc.PutU64(last_block);
  const uint64_t n = num_rows();
  enc.PutU64(n);
  enc.PutU32(static_cast<uint32_t>(columns.size()));
  for (RowId rid : rids) enc.PutU64(rid);
  for (BlockNum b : creator_blocks) enc.PutU64(b);
  for (const ColumnChunk& chunk : columns) {
    enc.PutU8(static_cast<uint8_t>(chunk.type));
    enc.PutBytesRaw(std::string(
        reinterpret_cast<const char*>(chunk.nulls.data()), chunk.nulls.size()));
    switch (chunk.type) {
      case ValueType::kInt:
      case ValueType::kBool:
        for (int64_t v : chunk.ints) enc.PutI64(v);
        break;
      case ValueType::kDouble: {
        for (double d : chunk.doubles) {
          uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          enc.PutU64(bits);
        }
        enc.PutBytesRaw(std::string(
            reinterpret_cast<const char*>(chunk.was_int.data()),
            chunk.was_int.size()));
        for (int64_t v : chunk.ints) enc.PutI64(v);
        break;
      }
      case ValueType::kText:
        enc.PutU32(static_cast<uint32_t>(chunk.dict.size()));
        for (const std::string& s : chunk.dict) enc.PutString(s);
        for (uint32_t code : chunk.codes) enc.PutU32(code);
        break;
      default:
        for (const Value& v : chunk.raws) enc.PutValue(v);
        break;
    }
    enc.PutU8(chunk.has_null ? 1 : 0);
    enc.PutValue(chunk.min);
    enc.PutValue(chunk.max);
  }
  enc.PutU64(deletes.size());
  for (const DeleteEvent& d : deletes) {
    enc.PutU64(d.rid);
    enc.PutU64(d.block);
  }
  out->append(enc.buffer());
}

Result<std::shared_ptr<const TableSegment>> TableSegment::Decode(
    const std::string& payload) {
  auto fail = []() {
    return Status::Corruption("columnar segment: truncated payload");
  };
  Decoder dec(payload);
  auto seg = std::make_shared<TableSegment>();
  uint32_t table_id = 0;
  uint64_t n = 0;
  uint32_t num_cols = 0;
  if (!dec.GetString(&seg->table_name) || !dec.GetU32(&table_id) ||
      !dec.GetU64(&seg->first_block) || !dec.GetU64(&seg->last_block) ||
      !dec.GetU64(&n) || !dec.GetU32(&num_cols)) {
    return fail();
  }
  seg->table_id = table_id;
  if (n > payload.size() || num_cols > payload.size()) {
    return Status::Corruption("columnar segment: absurd row/column count");
  }
  seg->rids.resize(n);
  seg->creator_blocks.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!dec.GetU64(&seg->rids[i])) return fail();
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (!dec.GetU64(&seg->creator_blocks[i])) return fail();
  }
  seg->columns.resize(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    ColumnChunk& chunk = seg->columns[c];
    uint8_t type = 0;
    if (!dec.GetU8(&type)) return fail();
    chunk.type = static_cast<ValueType>(type);
    chunk.nulls.resize(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (!dec.GetU8(&chunk.nulls[i])) return fail();
    }
    switch (chunk.type) {
      case ValueType::kInt:
      case ValueType::kBool:
        chunk.ints.resize(n);
        for (uint64_t i = 0; i < n; ++i) {
          if (!dec.GetI64(&chunk.ints[i])) return fail();
        }
        break;
      case ValueType::kDouble: {
        chunk.doubles.resize(n);
        chunk.was_int.resize(n);
        chunk.ints.resize(n);
        for (uint64_t i = 0; i < n; ++i) {
          uint64_t bits = 0;
          if (!dec.GetU64(&bits)) return fail();
          std::memcpy(&chunk.doubles[i], &bits, sizeof(double));
        }
        for (uint64_t i = 0; i < n; ++i) {
          if (!dec.GetU8(&chunk.was_int[i])) return fail();
        }
        for (uint64_t i = 0; i < n; ++i) {
          if (!dec.GetI64(&chunk.ints[i])) return fail();
        }
        break;
      }
      case ValueType::kText: {
        uint32_t dict_size = 0;
        if (!dec.GetU32(&dict_size)) return fail();
        if (dict_size > payload.size()) {
          return Status::Corruption("columnar segment: absurd dict size");
        }
        chunk.dict.resize(dict_size);
        for (uint32_t i = 0; i < dict_size; ++i) {
          if (!dec.GetString(&chunk.dict[i])) return fail();
        }
        chunk.codes.resize(n);
        for (uint64_t i = 0; i < n; ++i) {
          if (!dec.GetU32(&chunk.codes[i])) return fail();
          if (chunk.nulls[i] == 0 && chunk.codes[i] >= dict_size) {
            return Status::Corruption("columnar segment: code out of range");
          }
        }
        break;
      }
      default: {
        chunk.raws.resize(n, Value::Null());
        for (uint64_t i = 0; i < n; ++i) {
          auto v = dec.GetValue();
          if (!v.ok()) return v.status();
          chunk.raws[i] = std::move(v).value();
        }
        break;
      }
    }
    uint8_t has_null = 0;
    if (!dec.GetU8(&has_null)) return fail();
    chunk.has_null = has_null != 0;
    auto min = dec.GetValue();
    if (!min.ok()) return min.status();
    chunk.min = std::move(min).value();
    auto max = dec.GetValue();
    if (!max.ok()) return max.status();
    chunk.max = std::move(max).value();
  }
  uint64_t num_deletes = 0;
  if (!dec.GetU64(&num_deletes)) return fail();
  if (num_deletes > payload.size()) {
    return Status::Corruption("columnar segment: absurd delete count");
  }
  seg->deletes.resize(num_deletes);
  for (uint64_t i = 0; i < num_deletes; ++i) {
    if (!dec.GetU64(&seg->deletes[i].rid) ||
        !dec.GetU64(&seg->deletes[i].block)) {
      return fail();
    }
  }
  return std::shared_ptr<const TableSegment>(std::move(seg));
}

namespace {

Status WriteSegmentFile(
    const std::string& dir, BlockNum first, BlockNum last,
    const std::vector<std::shared_ptr<const TableSegment>>& segments) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path =
      (fs::path(dir) / SegmentFileName(first, last)).string();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("columnar: cannot create " + tmp);
  }
  bool ok = std::fwrite(kColumnarMagic, 1, sizeof(kColumnarMagic), f) ==
            sizeof(kColumnarMagic);
  for (const auto& seg : segments) {
    if (!ok) break;
    std::string payload;
    seg->EncodeTo(&payload);
    Encoder frame;
    frame.PutU32(static_cast<uint32_t>(payload.size()));
    frame.PutU32(Crc32(payload));
    frame.PutBytesRaw(payload);
    const std::string& record = frame.buffer();
    ok = std::fwrite(record.data(), 1, record.size(), f) == record.size();
  }
  if (ok) ok = std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Unavailable("columnar: short write to " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::Unavailable("columnar: rename to " + path + " failed");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<std::shared_ptr<const TableSegment>>>
ColumnStore::LoadSegmentFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("columnar: cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, got);
  }
  std::fclose(f);
  if (bytes.size() < sizeof(kColumnarMagic) ||
      std::memcmp(bytes.data(), kColumnarMagic, sizeof(kColumnarMagic)) != 0) {
    return Status::Corruption("columnar: bad magic in " + path);
  }
  std::vector<std::shared_ptr<const TableSegment>> out;
  size_t pos = sizeof(kColumnarMagic);
  while (pos < bytes.size()) {
    if (pos + kRecordPrefixBytes > bytes.size()) break;  // torn tail
    uint32_t len, crc;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (len > kMaxRecordBytes) {
      return Status::Corruption("columnar: absurd record length in " + path);
    }
    if (pos + kRecordPrefixBytes + len > bytes.size()) break;  // torn tail
    std::string payload = bytes.substr(pos + kRecordPrefixBytes, len);
    if (Crc32(payload) != crc) {
      // A torn final record is tolerated; interior corruption is not.
      if (pos + kRecordPrefixBytes + len == bytes.size()) break;
      return Status::Corruption("columnar: record CRC mismatch in " + path);
    }
    auto seg = TableSegment::Decode(payload);
    if (!seg.ok()) return seg.status();
    out.push_back(std::move(seg).value());
    pos += kRecordPrefixBytes + len;
  }
  return out;
}

// ---------------- ColumnStore ----------------

ColumnStore::PerTable& ColumnStore::EntryLocked(const Table* table) {
  PerTable& pt = tables_[table];
  if (pt.table == nullptr) pt.table = table;
  return pt;
}

void ColumnStore::OnInsert(const Table* table, RowId rid, BlockNum block) {
  std::lock_guard<std::mutex> lock(mu_);
  EntryLocked(table).tail_inserts.emplace_back(rid, block);
}

void ColumnStore::OnDelete(const Table* table, RowId rid, BlockNum block) {
  std::lock_guard<std::mutex> lock(mu_);
  EntryLocked(table).tail_deletes.push_back(DeleteEvent{rid, block});
}

Status ColumnStore::SealThrough(BlockNum target, const std::string& dir) {
  struct Work {
    const Table* table = nullptr;
    std::vector<std::pair<RowId, BlockNum>> inserts;
    std::vector<DeleteEvent> deletes;
    size_t ins_n = 0;
    size_t del_n = 0;
    std::shared_ptr<const std::unordered_map<RowId, BlockNum>> old_deletes;
  };
  BlockNum from = 0;
  std::vector<Work> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (target <= watermark_) return Status::OK();
    from = watermark_ + 1;
    for (auto& [table, pt] : tables_) {
      // Events are appended in commit order, so blocks are nondecreasing:
      // the sealable events are a prefix.
      auto ins_end = std::upper_bound(
          pt.tail_inserts.begin(), pt.tail_inserts.end(), target,
          [](BlockNum t, const std::pair<RowId, BlockNum>& e) {
            return t < e.second;
          });
      auto del_end = std::upper_bound(
          pt.tail_deletes.begin(), pt.tail_deletes.end(), target,
          [](BlockNum t, const DeleteEvent& e) { return t < e.block; });
      Work w;
      w.ins_n = static_cast<size_t>(ins_end - pt.tail_inserts.begin());
      w.del_n = static_cast<size_t>(del_end - pt.tail_deletes.begin());
      if (w.ins_n == 0 && w.del_n == 0) continue;
      w.table = table;
      w.inserts.assign(pt.tail_inserts.begin(), ins_end);
      w.deletes.assign(pt.tail_deletes.begin(), del_end);
      w.old_deletes = pt.sealed_deletes;
      work.push_back(std::move(w));
    }
  }

  // Build segments off the lock: payload reads are lock-free, and queries
  // keep scanning the tail events meanwhile (they were copied, not moved).
  struct Built {
    const Table* table;
    std::shared_ptr<const TableSegment> segment;
    std::shared_ptr<const std::unordered_map<RowId, BlockNum>> merged;
    size_t ins_n;
    size_t del_n;
  };
  std::vector<Built> built;
  std::vector<std::shared_ptr<const TableSegment>> archive;
  for (Work& w : work) {
    auto seg = BuildSegment(*w.table, from, target, std::move(w.inserts),
                            std::move(w.deletes));
    auto merged =
        std::make_shared<std::unordered_map<RowId, BlockNum>>(*w.old_deletes);
    for (const DeleteEvent& d : seg->deletes) merged->emplace(d.rid, d.block);
    archive.push_back(seg);
    built.push_back(Built{w.table, std::move(seg), std::move(merged), w.ins_n,
                          w.del_n});
  }

  Status archive_status = Status::OK();
  if (!dir.empty() && !archive.empty()) {
    archive_status = WriteSegmentFile(dir, from, target, archive);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Built& b : built) {
      PerTable& pt = tables_[b.table];
      pt.segments.push_back(std::move(b.segment));
      pt.sealed_deletes = std::move(b.merged);
      pt.tail_inserts.erase(pt.tail_inserts.begin(),
                            pt.tail_inserts.begin() +
                                static_cast<ptrdiff_t>(b.ins_n));
      pt.tail_deletes.erase(pt.tail_deletes.begin(),
                            pt.tail_deletes.begin() +
                                static_cast<ptrdiff_t>(b.del_n));
    }
    watermark_ = target;
    watermark_pub_.store(target, std::memory_order_release);
    segments_sealed_.fetch_add(built.size(), std::memory_order_relaxed);
  }
  return archive_status;
}

ColumnStore::TableSnapshot ColumnStore::SnapshotFor(const Table* table) const {
  TableSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.watermark = watermark_;
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    snap.sealed_deletes =
        std::make_shared<const std::unordered_map<RowId, BlockNum>>();
    return snap;
  }
  const PerTable& pt = it->second;
  snap.table = pt.table;
  snap.segments = pt.segments;
  snap.sealed_deletes = pt.sealed_deletes;
  snap.tail_inserts = pt.tail_inserts;
  snap.tail_deletes = pt.tail_deletes;
  return snap;
}

}  // namespace brdb
