#include "storage/schema.h"

namespace brdb {

TableSchema::TableSchema(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) {
      pk_column_ = static_cast<int>(i);
      columns_[i].not_null = true;
      columns_[i].unique = true;
      columns_[i].indexed = true;
    }
    if (columns_[i].unique) columns_[i].indexed = true;
  }
}

int TableSchema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status TableSchema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table " + name_ +
        " has " + std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnDef& col = columns_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      if (col.not_null) {
        return Status::ConstraintViolation("null value in NOT NULL column " +
                                           col.name);
      }
      continue;
    }
    bool type_ok = v.type() == col.type ||
                   (col.type == ValueType::kDouble && v.type() == ValueType::kInt);
    if (!type_ok) {
      return Status::InvalidArgument(
          "type mismatch for column " + col.name + ": expected " +
          ValueTypeToString(col.type) + ", got " + ValueTypeToString(v.type()));
    }
  }
  return Status::OK();
}

Status TableSchema::MarkIndexed(const std::string& column) {
  int idx = ColumnIndex(column);
  if (idx < 0) {
    return Status::NotFound("no column " + column + " in table " + name_);
  }
  columns_[idx].indexed = true;
  return Status::OK();
}

}  // namespace brdb
