// Columnar ledger history (HTAP split, ROADMAP item 3).
//
// Committed block history is immutable, so it can be peeled off the OLTP
// row store into append-only, per-table, Parquet-style columnar segments:
// per-column typed arrays with min/max zone maps, dictionary-encoded text,
// and a row-id column that keeps every columnar row joinable back to its
// MVCC version (provenance). Segments are built in the background off the
// commit stream (ledger/history_builder.h) and sealed at a block-height
// watermark: a scan at snapshot height H reads sealed segments covering
// blocks <= watermark and tops up the (watermark, H] tail from the row
// store. Analytical queries over this layout must return byte-identical
// results to the row-store executor at every snapshot height — the
// vectorized path in src/sql is validated against that invariant.
//
// On disk, sealed segments reuse the block store's framing conventions
// (magic header, CRC32-framed length-prefixed records, torn-tail
// tolerance). The in-memory store is the source of truth after a restart
// (rebuilt from the version arena, whose creator/deleter block stamps
// survive checkpoint restore); the files are an archival mirror that lets
// history eventually exceed RAM.
#ifndef BRDB_STORAGE_COLUMNAR_H_
#define BRDB_STORAGE_COLUMNAR_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/table.h"

namespace brdb {

/// One column of a sealed segment: typed arrays plus a null bitmap and a
/// min/max zone map. The representation preserves *exact* Value identity:
/// a DOUBLE column may legally store INT values (schema widening), and
/// SUM/encoding semantics differ between Int(5) and Double(5.0), so those
/// rows carry a was_int marker with the original integer payload.
struct ColumnChunk {
  ValueType type = ValueType::kNull;  ///< declared column type
  std::vector<uint8_t> nulls;         ///< 1 = NULL at this row

  std::vector<int64_t> ints;     ///< kInt/kBool payloads; exact-int kDouble
  std::vector<double> doubles;   ///< kDouble payloads (numeric view)
  std::vector<uint8_t> was_int;  ///< kDouble: row stored an INT value
  std::vector<uint32_t> codes;   ///< kText: index into dict
  std::vector<std::string> dict; ///< kText: sorted unique strings
  std::vector<Value> raws;       ///< fallback for undeclared types

  bool has_null = false;
  Value min, max;  ///< zone map over non-null values (Value::Compare order)

  size_t size() const { return nulls.size(); }

  /// Reconstruct the exact stored Value of one row.
  Value At(size_t row) const;
};

/// A row deleted by a block's commit (rid may live in any earlier segment).
struct DeleteEvent {
  RowId rid = 0;
  BlockNum block = 0;
};

/// An immutable sealed segment: every row INSERTED by blocks in
/// (first_block-1, last_block], rid-sorted, plus the deletes those blocks
/// committed. Rows deleted later stay in place — visibility at height H is
/// creator_block <= H and no delete event <= H.
struct TableSegment {
  std::string table_name;
  TableId table_id = 0;
  BlockNum first_block = 0;
  BlockNum last_block = 0;
  std::vector<RowId> rids;              ///< ascending (provenance join key)
  std::vector<BlockNum> creator_blocks; ///< parallel to rids
  std::vector<ColumnChunk> columns;     ///< one per schema column
  std::vector<DeleteEvent> deletes;     ///< sorted by rid

  size_t num_rows() const { return rids.size(); }

  /// Serialize to a CRC-framed record payload / parse one back.
  void EncodeTo(std::string* out) const;
  static Result<std::shared_ptr<const TableSegment>> Decode(
      const std::string& payload);
};

/// Build a sealed segment for `table` from insert events (rid, block) and
/// delete events, reading row payloads lock-free from the version arena.
/// Events need not be sorted.
std::shared_ptr<const TableSegment> BuildSegment(
    const Table& table, BlockNum first_block, BlockNum last_block,
    std::vector<std::pair<RowId, BlockNum>> inserts,
    std::vector<DeleteEvent> deletes);

/// The per-node columnar mirror of committed blockchain-table state.
///
/// Threading: event intake (OnInsert/OnDelete/SetCommitted) is called by
/// the single serial-commit thread; SealThrough by the single builder
/// thread; SnapshotFor by any query thread. The mutex guards the per-table
/// maps; sealed segments and sealed-delete maps are immutable snapshots
/// swapped under it, so queries hold no lock while scanning.
class ColumnStore {
 public:
  /// A consistent cut of one table's columnar state: sealed segments
  /// (blocks <= watermark), the merged sealed-delete map, and the
  /// not-yet-sealed tail events in (watermark, committed].
  struct TableSnapshot {
    const Table* table = nullptr;
    std::vector<std::shared_ptr<const TableSegment>> segments;
    std::shared_ptr<const std::unordered_map<RowId, BlockNum>> sealed_deletes;
    std::vector<std::pair<RowId, BlockNum>> tail_inserts;  ///< commit order
    std::vector<DeleteEvent> tail_deletes;
    BlockNum watermark = 0;
  };

  // ---- commit-thread intake ----
  void OnInsert(const Table* table, RowId rid, BlockNum block);
  void OnDelete(const Table* table, RowId rid, BlockNum block);
  /// All events of `block` are in; the builder may seal through it.
  void SetCommitted(BlockNum block) {
    committed_.store(block, std::memory_order_release);
  }

  // ---- observability ----
  BlockNum committed() const {
    return committed_.load(std::memory_order_acquire);
  }
  BlockNum watermark() const {
    return watermark_pub_.load(std::memory_order_acquire);
  }
  uint64_t segments_sealed() const {
    return segments_sealed_.load(std::memory_order_relaxed);
  }

  // ---- sealing (builder thread; calls must be serialized) ----
  /// Seal every event with block <= target. When `dir` is non-empty the
  /// sealed segments are also archived to
  /// `dir/colseg-<first>-<last>.col`; an archive write failure is
  /// returned but the in-memory seal still takes effect (the arena can
  /// always rebuild).
  Status SealThrough(BlockNum target, const std::string& dir);

  // ---- query side ----
  /// Null table pointer in the result means the store has never seen the
  /// table (no committed rows): segments and tail are empty, which is the
  /// correct history.
  TableSnapshot SnapshotFor(const Table* table) const;

  /// Read back an archived segment file (tests / future catch-up serving).
  static Result<std::vector<std::shared_ptr<const TableSegment>>>
  LoadSegmentFile(const std::string& path);

 private:
  struct PerTable {
    const Table* table = nullptr;
    std::vector<std::shared_ptr<const TableSegment>> segments;
    std::shared_ptr<const std::unordered_map<RowId, BlockNum>> sealed_deletes =
        std::make_shared<const std::unordered_map<RowId, BlockNum>>();
    /// Unsealed events, appended in commit order (blocks nondecreasing).
    std::vector<std::pair<RowId, BlockNum>> tail_inserts;
    std::vector<DeleteEvent> tail_deletes;
  };

  PerTable& EntryLocked(const Table* table);

  mutable std::mutex mu_;
  std::unordered_map<const Table*, PerTable> tables_;
  BlockNum watermark_ = 0;  ///< guarded by mu_
  std::atomic<BlockNum> watermark_pub_{0};
  std::atomic<BlockNum> committed_{0};
  std::atomic<uint64_t> segments_sealed_{0};
};

}  // namespace brdb

#endif  // BRDB_STORAGE_COLUMNAR_H_
