#include "storage/table.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "storage/partition.h"

namespace brdb {

namespace {
std::string BadRowId(const TableSchema& schema, RowId id) {
  return "invalid RowId " + std::to_string(id) + " for table " +
         schema.name();
}

// Copies the mutable metadata fields; caller holds the table mutex.
// Assigning into an existing VersionMeta reuses its candidates capacity.
void CopyMeta(const RowVersion& v, VersionMeta* m) {
  m->xmin = v.xmin;
  m->creator_aborted = v.creator_aborted;
  m->xmax = v.xmax;
  m->xmax_candidates = v.xmax_candidates;
  m->creator_block = v.creator_block;
  m->deleter_block = v.deleter_block;
  m->next_version = v.next_version;
  m->prev_version = v.prev_version;
}
}  // namespace

Table::Table(TableId id, TableSchema schema, std::string db_schema,
             IndexBackend index_backend, size_t partitions)
    : id_(id),
      schema_(std::move(schema)),
      db_schema_(std::move(db_schema)),
      index_backend_(index_backend),
      partitions_(partitions == 0 ? 1 : partitions) {
  indexes_.resize(schema_.columns().size());
  for (size_t i = 0; i < schema_.columns().size(); ++i) {
    if (schema_.columns()[i].indexed) {
      indexes_[i] = OrderedRowIndex::Create(index_backend_);
      indexed_columns_.push_back(static_cast<int>(i));
    }
  }
}

Table::~Table() {
  for (auto& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

Status Table::CreateIndex(const std::string& column) {
  std::lock_guard<std::mutex> lock(mu_);
  int col = schema_.ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column " + column + " in table " +
                            schema_.name());
  }
  if (indexes_[col] != nullptr) {
    return Status::AlreadyExists("index on " + schema_.name() + "." + column);
  }
  // Bulk load: collect live (key, id) pairs — ids are already ascending, so
  // a stable sort by key yields the (key, id) order the backfill loop used
  // to produce (ids in append order within each key).
  std::vector<std::pair<Value, RowId>> entries;
  entries.reserve(Size());
  for (RowId i = 0; i < Size(); ++i) {
    if (i < dead_.size() && dead_[i]) continue;
    entries.emplace_back(VersionAt(i).values[col], i);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.Compare(b.first) < 0;
                   });
  indexes_[col] = OrderedRowIndex::BulkLoad(index_backend_, std::move(entries));
  indexed_columns_.push_back(col);
  BRDB_RETURN_NOT_OK(schema_.MarkIndexed(column));
  return Status::OK();
}

bool Table::HasIndexOn(int column) const {
  std::lock_guard<std::mutex> lock(mu_);
  return column >= 0 && static_cast<size_t>(column) < indexes_.size() &&
         indexes_[column] != nullptr;
}

void Table::WithIndexOn(
    int column, const std::function<void(const OrderedRowIndex*)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  const OrderedRowIndex* index =
      column >= 0 && static_cast<size_t>(column) < indexes_.size()
          ? indexes_[column].get()
          : nullptr;
  fn(index);
}

RowVersion& Table::EmplaceSlotLocked(RowId id) {
  size_t offset = 0;
  size_t chunk = ChunkOf(id, &offset);
  BRDB_CHECK(chunk < kNumChunks, "version arena exhausted");
  if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
    size_t cap = 1ULL << (chunk + kFirstChunkBits);
    chunks_[chunk].store(new RowVersion[cap](), std::memory_order_release);
  }
  return chunks_[chunk].load(std::memory_order_relaxed)[offset];
}

uint32_t Table::PartitionOfValues(const Row& values) const {
  const int pc = schema_.partition_column();
  if (pc < 0 || partitions_ <= 1 ||
      static_cast<size_t>(pc) >= values.size()) {
    return 0;
  }
  return PartitionOfValue(values[static_cast<size_t>(pc)], partitions_);
}

RowId Table::AppendVersion(TxnId xmin, Row values, RowId prev_version) {
  std::lock_guard<std::mutex> lock(mu_);
  RowId id = num_versions_.load(std::memory_order_relaxed);
  RowVersion& v = EmplaceSlotLocked(id);
  v.xmin = xmin;
  v.values = std::move(values);
  v.prev_version = prev_version;
  v.partition = PartitionOfValues(v.values);
  for (int col : indexed_columns_) {
    indexes_[col]->Insert(v.values[col], id);
  }
  // Release-publish: pairs with the acquire in Size(), making the new
  // version's payload visible to lock-free readers.
  num_versions_.store(id + 1, std::memory_order_release);
  return id;
}

RowId Table::RestoreVersion(Row values, RowId prev_version, RowId next_version,
                            BlockNum creator_block, BlockNum deleter_block) {
  std::lock_guard<std::mutex> lock(mu_);
  RowId id = num_versions_.load(std::memory_order_relaxed);
  RowVersion& v = EmplaceSlotLocked(id);
  v.xmin = kRestoredTxnId;
  v.values = std::move(values);
  v.prev_version = prev_version;
  v.next_version = next_version;
  v.creator_block = creator_block;
  v.partition = PartitionOfValues(v.values);
  if (deleter_block != 0) {
    v.xmax = kRestoredTxnId;
    v.deleter_block = deleter_block;
  }
  for (int col : indexed_columns_) {
    indexes_[col]->Insert(v.values[col], id);
  }
  num_versions_.store(id + 1, std::memory_order_release);
  return id;
}

RowId Table::RestoreHole() {
  std::lock_guard<std::mutex> lock(mu_);
  RowId id = num_versions_.load(std::memory_order_relaxed);
  RowVersion& v = EmplaceSlotLocked(id);
  v.xmin = kRestoredTxnId;
  v.creator_aborted = true;  // belt-and-braces: invisible even if undead
  dead_.resize(id + 1, false);
  dead_[id] = true;
  num_versions_.store(id + 1, std::memory_order_release);
  return id;
}

bool Table::IsDead(RowId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id < dead_.size() && dead_[id];
}

size_t Table::NumVersions() const { return Size(); }

const Row& Table::ValuesOf(RowId id) const {
  BRDB_CHECK(id < Size(), BadRowId(schema_, id));
  return VersionAt(id).values;  // immutable after append
}

TxnId Table::XminOf(RowId id) const {
  BRDB_CHECK(id < Size(), BadRowId(schema_, id));
  return VersionAt(id).xmin;  // immutable after append
}

uint32_t Table::PartitionOf(RowId id) const {
  BRDB_CHECK(id < Size(), BadRowId(schema_, id));
  return VersionAt(id).partition;  // immutable after append
}

VersionMeta Table::MetaOf(RowId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  BRDB_CHECK(id < Size(), BadRowId(schema_, id));
  VersionMeta m;
  CopyMeta(VersionAt(id), &m);
  return m;
}

void Table::MetasOf(const RowId* ids, size_t count,
                    std::vector<VersionMeta>* out) const {
  // Grow-only: shrinking would free the elements' candidate vectors the
  // next larger scan wants to reuse. Callers index [0, count).
  if (out->size() < count) out->resize(count);
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < count; ++i) {
    RowId id = ids[i];
    BRDB_CHECK(id < Size(), BadRowId(schema_, id));
    CopyMeta(VersionAt(id), &(*out)[i]);
  }
}

Status Table::AddXmaxCandidate(RowId id, TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= Size()) {
    return Status::InvalidArgument(BadRowId(schema_, id));
  }
  RowVersion& v = VersionAt(id);
  if (v.xmax != 0) {
    // A committed deleter exists; this write lost before it started.
    return Status::WriteConflict("row version already deleted");
  }
  if (std::find(v.xmax_candidates.begin(), v.xmax_candidates.end(), txn) ==
      v.xmax_candidates.end()) {
    v.xmax_candidates.push_back(txn);
  }
  return Status::OK();
}

void Table::RemoveXmaxCandidate(RowId id, TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  BRDB_CHECK(id < Size(), BadRowId(schema_, id));
  auto& cands = VersionAt(id).xmax_candidates;
  cands.erase(std::remove(cands.begin(), cands.end(), txn), cands.end());
}

std::vector<TxnId> Table::FinalizeDelete(RowId id, TxnId winner,
                                         BlockNum block) {
  std::lock_guard<std::mutex> lock(mu_);
  BRDB_CHECK(id < Size(), BadRowId(schema_, id));
  RowVersion& v = VersionAt(id);
  std::vector<TxnId> losers;
  for (TxnId cand : v.xmax_candidates) {
    if (cand != winner) losers.push_back(cand);
  }
  v.xmax = winner;
  v.deleter_block = block;
  v.xmax_candidates.clear();
  return losers;
}

void Table::SetCreatorBlock(RowId id, BlockNum block) {
  std::lock_guard<std::mutex> lock(mu_);
  BRDB_CHECK(id < Size(), BadRowId(schema_, id));
  VersionAt(id).creator_block = block;
}

void Table::MarkCreatorAborted(RowId id) {
  std::lock_guard<std::mutex> lock(mu_);
  BRDB_CHECK(id < Size(), BadRowId(schema_, id));
  VersionAt(id).creator_aborted = true;
}

void Table::LinkNextVersion(RowId old_id, RowId next_id) {
  std::lock_guard<std::mutex> lock(mu_);
  BRDB_CHECK(old_id < Size(), BadRowId(schema_, old_id));
  VersionAt(old_id).next_version = next_id;
}

std::vector<RowId> Table::ScanAllRowIds() const {
  std::vector<RowId> out;
  ScanAllRowIds(&out);
  return out;
}

void Table::ScanAllRowIds(std::vector<RowId>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->clear();
  size_t n = Size();
  if (out->capacity() < n) out->reserve(n);
  for (RowId i = 0; i < n; ++i) {
    if (i < dead_.size() && dead_[i]) continue;
    out->push_back(i);
  }
}

Result<std::vector<RowId>> Table::IndexRange(int column, const Value* lo,
                                             bool lo_inclusive,
                                             const Value* hi,
                                             bool hi_inclusive) const {
  std::vector<RowId> out;
  BRDB_RETURN_NOT_OK(
      IndexRange(column, lo, lo_inclusive, hi, hi_inclusive, &out));
  return out;
}

Status Table::IndexRange(int column, const Value* lo, bool lo_inclusive,
                         const Value* hi, bool hi_inclusive,
                         std::vector<RowId>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  out->clear();
  const OrderedRowIndex* index =
      column >= 0 && static_cast<size_t>(column) < indexes_.size()
          ? indexes_[column].get()
          : nullptr;
  if (index == nullptr) {
    return Status::NotFound("no index on column " +
                            std::to_string(column) + " of table " +
                            schema_.name());
  }
  index->Scan(lo, lo_inclusive, hi, hi_inclusive,
              [&](const Value&, const PostingList& ids) {
                for (RowId id : ids) {
                  if (id < dead_.size() && dead_[id]) continue;
                  out->push_back(id);
                }
                return true;
              });
  return Status::OK();
}

size_t Table::Vacuum(BlockNum horizon_block,
                     const std::function<bool(TxnId)>& aborted) {
  std::lock_guard<std::mutex> lock(mu_);
  dead_.resize(Size(), false);
  size_t removed = 0;
  for (RowId i = 0; i < Size(); ++i) {
    if (dead_[i]) continue;
    const RowVersion& v = VersionAt(i);
    bool prune = false;
    if (v.creator_aborted || aborted(v.xmin)) {
      prune = true;  // never visible to anyone
    } else if (v.deleter_block != 0 && v.deleter_block <= horizon_block) {
      prune = true;  // deleted before the horizon: invisible at/after it
    }
    if (prune) {
      dead_[i] = true;
      ++removed;
      for (int col : indexed_columns_) {
        indexes_[col]->Erase(v.values[col], i);
      }
    }
  }
  return removed;
}

}  // namespace brdb
