#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace brdb {

Table::Table(TableId id, TableSchema schema, std::string db_schema)
    : id_(id), schema_(std::move(schema)), db_schema_(std::move(db_schema)) {
  for (size_t i = 0; i < schema_.columns().size(); ++i) {
    if (schema_.columns()[i].indexed) {
      indexes_.emplace(static_cast<int>(i), OrderedIndex{});
    }
  }
}

Status Table::CreateIndex(const std::string& column) {
  std::lock_guard<std::mutex> lock(mu_);
  int col = schema_.ColumnIndex(column);
  if (col < 0) {
    return Status::NotFound("no column " + column + " in table " +
                            schema_.name());
  }
  if (indexes_.count(col)) {
    return Status::AlreadyExists("index on " + schema_.name() + "." + column);
  }
  OrderedIndex index;
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (i < dead_.size() && dead_[i]) continue;
    index[heap_[i].values[col]].push_back(i);
  }
  indexes_.emplace(col, std::move(index));
  BRDB_RETURN_NOT_OK(schema_.MarkIndexed(column));
  return Status::OK();
}

bool Table::HasIndexOn(int column) const {
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.count(column) > 0;
}

RowId Table::AppendVersion(TxnId xmin, Row values, RowId prev_version) {
  std::lock_guard<std::mutex> lock(mu_);
  RowId id = heap_.size();
  RowVersion v;
  v.xmin = xmin;
  v.values = std::move(values);
  v.prev_version = prev_version;
  for (auto& [col, index] : indexes_) {
    index[v.values[col]].push_back(id);
  }
  heap_.push_back(std::move(v));
  return id;
}

size_t Table::NumVersions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heap_.size();
}

const Row& Table::ValuesOf(RowId id) const {
  assert(id < heap_.size());
  return heap_[id].values;  // immutable after append
}

TxnId Table::XminOf(RowId id) const {
  assert(id < heap_.size());
  return heap_[id].xmin;  // immutable after append
}

VersionMeta Table::MetaOf(RowId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < heap_.size());
  const RowVersion& v = heap_[id];
  VersionMeta m;
  m.xmin = v.xmin;
  m.creator_aborted = v.creator_aborted;
  m.xmax = v.xmax;
  m.xmax_candidates = v.xmax_candidates;
  m.creator_block = v.creator_block;
  m.deleter_block = v.deleter_block;
  m.next_version = v.next_version;
  m.prev_version = v.prev_version;
  return m;
}

Status Table::AddXmaxCandidate(RowId id, TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < heap_.size());
  RowVersion& v = heap_[id];
  if (v.xmax != 0) {
    // A committed deleter exists; this write lost before it started.
    return Status::WriteConflict("row version already deleted");
  }
  if (std::find(v.xmax_candidates.begin(), v.xmax_candidates.end(), txn) ==
      v.xmax_candidates.end()) {
    v.xmax_candidates.push_back(txn);
  }
  return Status::OK();
}

void Table::RemoveXmaxCandidate(RowId id, TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < heap_.size());
  auto& cands = heap_[id].xmax_candidates;
  cands.erase(std::remove(cands.begin(), cands.end(), txn), cands.end());
}

std::vector<TxnId> Table::FinalizeDelete(RowId id, TxnId winner,
                                         BlockNum block) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < heap_.size());
  RowVersion& v = heap_[id];
  std::vector<TxnId> losers;
  for (TxnId cand : v.xmax_candidates) {
    if (cand != winner) losers.push_back(cand);
  }
  v.xmax = winner;
  v.deleter_block = block;
  v.xmax_candidates.clear();
  return losers;
}

void Table::SetCreatorBlock(RowId id, BlockNum block) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < heap_.size());
  heap_[id].creator_block = block;
}

void Table::MarkCreatorAborted(RowId id) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(id < heap_.size());
  heap_[id].creator_aborted = true;
}

void Table::LinkNextVersion(RowId old_id, RowId next_id) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(old_id < heap_.size());
  heap_[old_id].next_version = next_id;
}

std::vector<RowId> Table::ScanAllRowIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RowId> out;
  out.reserve(heap_.size());
  for (RowId i = 0; i < heap_.size(); ++i) {
    if (i < dead_.size() && dead_[i]) continue;
    out.push_back(i);
  }
  return out;
}

Result<std::vector<RowId>> Table::IndexRange(int column, const Value* lo,
                                             bool lo_inclusive,
                                             const Value* hi,
                                             bool hi_inclusive) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    return Status::NotFound("no index on column " +
                            std::to_string(column) + " of table " +
                            schema_.name());
  }
  const OrderedIndex& index = it->second;
  auto begin = index.begin();
  if (lo != nullptr) {
    begin = lo_inclusive ? index.lower_bound(*lo) : index.upper_bound(*lo);
  }
  std::vector<RowId> out;
  for (auto iter = begin; iter != index.end(); ++iter) {
    if (hi != nullptr) {
      int c = iter->first.Compare(*hi);
      if (c > 0 || (c == 0 && !hi_inclusive)) break;
    }
    for (RowId id : iter->second) {
      if (id < dead_.size() && dead_[id]) continue;
      out.push_back(id);
    }
  }
  return out;
}

size_t Table::Vacuum(BlockNum horizon_block,
                     const std::function<bool(TxnId)>& aborted) {
  std::lock_guard<std::mutex> lock(mu_);
  dead_.resize(heap_.size(), false);
  size_t removed = 0;
  for (RowId i = 0; i < heap_.size(); ++i) {
    if (dead_[i]) continue;
    const RowVersion& v = heap_[i];
    bool prune = false;
    if (v.creator_aborted || aborted(v.xmin)) {
      prune = true;  // never visible to anyone
    } else if (v.deleter_block != 0 && v.deleter_block <= horizon_block) {
      prune = true;  // deleted before the horizon: invisible at/after it
    }
    if (prune) {
      dead_[i] = true;
      ++removed;
      for (auto& [col, index] : indexes_) {
        auto entry = index.find(v.values[col]);
        if (entry != index.end()) {
          auto& ids = entry->second;
          ids.erase(std::remove(ids.begin(), ids.end(), i), ids.end());
          if (ids.empty()) index.erase(entry);
        }
      }
    }
  }
  return removed;
}

}  // namespace brdb
