// Ordered row indexes for Table: a cache-friendly B+-tree (the default)
// and the historical std::map backend kept as a parity/benchmark baseline.
//
// Why a B+-tree: the per-column ordered index is the hottest structure on
// the scan path (docs/PERF.md). A red-black map pays one cache miss per
// visited key (nodes are heap-scattered 3-pointer records); the B+-tree
// packs kLeafFanout keys into one contiguous node, chains leaves for range
// iteration, and binary-searches inline key arrays — so a range scan
// touches O(range / fanout) cache lines instead of O(range).
//
// Semantics contract (what Table and the determinism tests rely on):
//  * keys are Values ordered by Value::Compare — identical to the map's
//    ValueLess, so scan order is byte-identical across backends;
//  * duplicate keys share one posting list; RowIds within a posting stay in
//    insertion order (the map kept vector push_back order — same thing);
//  * Erase removes a single RowId from a posting and drops the key when the
//    posting empties. The B+-tree does not rebalance on erase: the only
//    caller is Table::Vacuum, whose deletions are rare and monotone, and an
//    underfull leaf is still correct — merely less packed. When vacuum on a
//    delete-heavy table leaves the leaf level below a configurable live/
//    capacity threshold, Erase triggers a LoadSorted rebuild that repacks
//    the tree (rebuild-on-threshold compaction).
//
// Thread-safety: none. Every index lives behind its owning Table's mutex.
#ifndef BRDB_STORAGE_BTREE_H_
#define BRDB_STORAGE_BTREE_H_

#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/value.h"

namespace brdb {

using RowId = uint64_t;

/// RowIds stored under one key, in insertion order.
using PostingList = std::vector<RowId>;

/// Which ordered-index implementation a Table uses. kStdMap reproduces the
/// pre-B-tree behavior and exists for parity tests and the map-vs-btree
/// microbenchmark baseline (bench/micro_index.cc).
enum class IndexBackend {
  kBTree,
  kStdMap,
};

/// Comparator shared by both backends (total order of Value::Compare).
struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) < 0;
  }
};

/// Visit callback for Scan: one key's posting list at a time, keys in
/// ascending order. Return false to stop the scan.
using PostingVisitor =
    std::function<bool(const Value& key, const PostingList& ids)>;

/// Interface Table programs against. Implementations are single-threaded;
/// the owning Table serializes access.
class OrderedRowIndex {
 public:
  virtual ~OrderedRowIndex() = default;

  /// Append `id` to `key`'s posting list (creating the key when absent).
  virtual void Insert(const Value& key, RowId id) = 0;

  /// Remove one `id` from `key`'s posting list; drops the key when the
  /// posting empties. No-op when key or id is absent (vacuum idempotence).
  virtual void Erase(const Value& key, RowId id) = 0;

  /// In-order visit of every posting whose key lies in [lo, hi]; a null
  /// bound is unbounded, inclusivity per bound.
  virtual void Scan(const Value* lo, bool lo_inclusive, const Value* hi,
                    bool hi_inclusive, const PostingVisitor& visit) const = 0;

  /// Number of distinct keys currently present.
  virtual size_t KeyCount() const = 0;

  virtual IndexBackend backend() const = 0;

  static std::unique_ptr<OrderedRowIndex> Create(IndexBackend backend);

  /// Build an index from `entries` sorted ascending by (key, id) — the
  /// CREATE INDEX backfill path. The B+-tree packs leaves directly from the
  /// sorted run instead of paying per-key descents.
  static std::unique_ptr<OrderedRowIndex> BulkLoad(
      IndexBackend backend, std::vector<std::pair<Value, RowId>> entries);
};

/// Cache-friendly B+-tree: fixed-fanout nodes with inline key arrays,
/// chained leaves, duplicate-key postings. Declared here (not in the .cc)
/// so the microbenchmark can instantiate it directly.
class BTreeRowIndex final : public OrderedRowIndex {
 public:
  // Fanout tuning: a leaf is ~fanout * (sizeof(Value) + sizeof(PostingList))
  // ≈ 64 * 72B ≈ 4.5KB — a few cache lines of keys scanned per binary
  // search step, and one allocation per 64 keys instead of per key.
  static constexpr int kLeafFanout = 64;
  static constexpr int kInnerFanout = 64;

  BTreeRowIndex();
  ~BTreeRowIndex() override;

  BTreeRowIndex(const BTreeRowIndex&) = delete;
  BTreeRowIndex& operator=(const BTreeRowIndex&) = delete;

  void Insert(const Value& key, RowId id) override;
  void Erase(const Value& key, RowId id) override;
  void Scan(const Value* lo, bool lo_inclusive, const Value* hi,
            bool hi_inclusive, const PostingVisitor& visit) const override;
  size_t KeyCount() const override { return key_count_; }
  IndexBackend backend() const override { return IndexBackend::kBTree; }

  /// Height of the tree (1 = root is a leaf). Exposed for tests.
  int Height() const { return height_; }

  /// Replace the contents from a (key, id)-sorted run (bulk load).
  void LoadSorted(std::vector<std::pair<Value, RowId>> entries);

  // ---- compaction (rebuild-on-threshold) ----
  //
  // Erase never merges leaves, so a delete-heavy table (vacuum after mass
  // DELETEs) decays into a long chain of near-empty leaves: scans touch
  // one cache line per few live keys and the dead key/posting slots hold
  // memory. When the live/capacity ratio of the leaf level drops below
  // the threshold after an erase, the tree rebuilds itself with
  // LoadSorted — one O(n) pass that repacks leaves full.

  /// Live-keys / leaf-capacity ratio below which Erase triggers a rebuild.
  /// <= 0 disables compaction. Trees of fewer than kMinCompactionLeaves
  /// leaves never rebuild (nothing to win).
  void SetCompactionThreshold(double threshold) {
    compaction_threshold_ = threshold;
  }
  double compaction_threshold() const { return compaction_threshold_; }

  /// Rebuilds performed so far (observability / tests).
  size_t CompactionCount() const { return compaction_count_; }
  /// Current number of leaf nodes (live capacity = leaves * kLeafFanout).
  size_t LeafCount() const { return leaf_count_; }

  static constexpr double kDefaultCompactionThreshold = 0.25;
  static constexpr size_t kMinCompactionLeaves = 4;

 private:
  struct Node;
  struct LeafNode;
  struct InnerNode;

  LeafNode* LeafFor(const Value& key) const;
  /// Leftmost leaf (scan start when lo is unbounded).
  LeafNode* FirstLeaf() const;

  void DestroySubtree(Node* node);

  /// True when the leaf level is sparse enough to be worth repacking.
  bool NeedsCompaction() const;
  /// Collect every (key, id) in order and LoadSorted them back — repacks
  /// leaves full and rebuilds the inner levels.
  void Compact();

  Node* root_ = nullptr;
  size_t key_count_ = 0;
  size_t leaf_count_ = 1;
  int height_ = 1;
  double compaction_threshold_ = kDefaultCompactionThreshold;
  size_t compaction_count_ = 0;
};

/// The historical backend: std::map<Value, PostingList>. Kept verbatim so
/// parity and determinism tests can diff the two implementations.
class StdMapRowIndex final : public OrderedRowIndex {
 public:
  void Insert(const Value& key, RowId id) override {
    map_[key].push_back(id);
  }
  void Erase(const Value& key, RowId id) override;
  void Scan(const Value* lo, bool lo_inclusive, const Value* hi,
            bool hi_inclusive, const PostingVisitor& visit) const override;
  size_t KeyCount() const override { return map_.size(); }
  IndexBackend backend() const override { return IndexBackend::kStdMap; }

 private:
  std::map<Value, PostingList, ValueLess> map_;
};

}  // namespace brdb

#endif  // BRDB_STORAGE_BTREE_H_
