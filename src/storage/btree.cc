#include "storage/btree.h"

#include <algorithm>

#include "common/logging.h"

namespace brdb {

// ---------------------------------------------------------------------------
// Node layout. Keys live in fixed inline arrays so a within-node binary
// search walks contiguous memory; leaves chain for range iteration.
// ---------------------------------------------------------------------------

struct BTreeRowIndex::Node {
  explicit Node(bool is_leaf) : leaf(is_leaf) {}
  const bool leaf;
  int count = 0;  ///< keys stored in this node
};

struct BTreeRowIndex::LeafNode : Node {
  LeafNode() : Node(true) {}
  Value keys[kLeafFanout];
  PostingList posts[kLeafFanout];
  LeafNode* next = nullptr;
};

struct BTreeRowIndex::InnerNode : Node {
  InnerNode() : Node(false) {}
  // children[i] holds keys < keys[i]; children[i+1] holds keys >= keys[i].
  Value keys[kInnerFanout];
  Node* children[kInnerFanout + 1] = {};
};

namespace {

/// First position in [first, first+count) whose key is >= `key`.
int LowerBound(const Value* first, int count, const Value& key) {
  int lo = 0, hi = count;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (first[mid].Compare(key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// First position in [first, first+count) whose key is > `key`.
int UpperBound(const Value* first, int count, const Value& key) {
  int lo = 0, hi = count;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (first[mid].Compare(key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

BTreeRowIndex::BTreeRowIndex() : root_(new LeafNode()) {}

BTreeRowIndex::~BTreeRowIndex() { DestroySubtree(root_); }

void BTreeRowIndex::DestroySubtree(Node* node) {
  if (node == nullptr) return;
  if (node->leaf) {
    delete static_cast<LeafNode*>(node);
    return;
  }
  InnerNode* inner = static_cast<InnerNode*>(node);
  for (int i = 0; i <= inner->count; ++i) DestroySubtree(inner->children[i]);
  delete inner;
}

BTreeRowIndex::LeafNode* BTreeRowIndex::LeafFor(const Value& key) const {
  Node* node = root_;
  while (!node->leaf) {
    InnerNode* inner = static_cast<InnerNode*>(node);
    // Exact separator matches route right: a separator is the smallest key
    // of its right subtree.
    node = inner->children[UpperBound(inner->keys, inner->count, key)];
  }
  return static_cast<LeafNode*>(node);
}

BTreeRowIndex::LeafNode* BTreeRowIndex::FirstLeaf() const {
  Node* node = root_;
  while (!node->leaf) node = static_cast<InnerNode*>(node)->children[0];
  return static_cast<LeafNode*>(node);
}

namespace {
/// Insertion split propagated one level up: `right` is a new sibling whose
/// smallest key is `sep`.
struct SplitUp {
  bool split = false;
  Value sep;
  void* right = nullptr;
};
}  // namespace

void BTreeRowIndex::Insert(const Value& key, RowId id) {
  // Iterative descent remembering the path (depth is tiny: fanout 64 keeps
  // a billion keys within 6 levels), then split back up as needed.
  InnerNode* path[16];
  int path_child[16];
  int depth = 0;
  Node* node = root_;
  while (!node->leaf) {
    InnerNode* inner = static_cast<InnerNode*>(node);
    int idx = UpperBound(inner->keys, inner->count, key);
    BRDB_CHECK(depth < 16, "B+-tree deeper than supported");
    path[depth] = inner;
    path_child[depth] = idx;
    ++depth;
    node = inner->children[idx];
  }

  LeafNode* leaf = static_cast<LeafNode*>(node);
  int pos = LowerBound(leaf->keys, leaf->count, key);
  if (pos < leaf->count && leaf->keys[pos].Compare(key) == 0) {
    leaf->posts[pos].push_back(id);  // duplicate key: extend the posting
    return;
  }
  ++key_count_;

  SplitUp up;
  if (leaf->count < kLeafFanout) {
    for (int i = leaf->count; i > pos; --i) {
      leaf->keys[i] = std::move(leaf->keys[i - 1]);
      leaf->posts[i] = std::move(leaf->posts[i - 1]);
    }
    leaf->keys[pos] = key;
    leaf->posts[pos] = PostingList{id};
    ++leaf->count;
  } else {
    // Split the leaf: upper half moves to a new chained sibling, then the
    // new key lands in whichever half owns its position.
    LeafNode* right = new LeafNode();
    ++leaf_count_;
    const int half = kLeafFanout / 2;
    for (int i = half; i < leaf->count; ++i) {
      right->keys[i - half] = std::move(leaf->keys[i]);
      right->posts[i - half] = std::move(leaf->posts[i]);
    }
    right->count = leaf->count - half;
    leaf->count = half;
    right->next = leaf->next;
    leaf->next = right;

    LeafNode* dest = leaf;
    int dest_pos = pos;
    if (pos >= half) {
      dest = right;
      dest_pos = pos - half;
    }
    for (int i = dest->count; i > dest_pos; --i) {
      dest->keys[i] = std::move(dest->keys[i - 1]);
      dest->posts[i] = std::move(dest->posts[i - 1]);
    }
    dest->keys[dest_pos] = key;
    dest->posts[dest_pos] = PostingList{id};
    ++dest->count;

    up.split = true;
    up.sep = right->keys[0];
    up.right = right;
  }

  // Propagate splits toward the root.
  while (up.split && depth > 0) {
    --depth;
    InnerNode* inner = path[depth];
    int idx = path_child[depth];
    Node* right_child = static_cast<Node*>(up.right);
    if (inner->count < kInnerFanout) {
      for (int i = inner->count; i > idx; --i) {
        inner->keys[i] = std::move(inner->keys[i - 1]);
        inner->children[i + 1] = inner->children[i];
      }
      inner->keys[idx] = std::move(up.sep);
      inner->children[idx + 1] = right_child;
      ++inner->count;
      up.split = false;
    } else {
      // Split the inner node: the middle separator moves up.
      const int mid = kInnerFanout / 2;
      InnerNode* right = new InnerNode();
      Value sep_up = std::move(inner->keys[mid]);
      for (int i = mid + 1; i < inner->count; ++i) {
        right->keys[i - mid - 1] = std::move(inner->keys[i]);
      }
      for (int i = mid + 1; i <= inner->count; ++i) {
        right->children[i - mid - 1] = inner->children[i];
      }
      right->count = inner->count - mid - 1;
      inner->count = mid;

      InnerNode* dest = inner;
      int dest_idx = idx;
      if (idx > mid) {
        dest = right;
        dest_idx = idx - mid - 1;
      }
      for (int i = dest->count; i > dest_idx; --i) {
        dest->keys[i] = std::move(dest->keys[i - 1]);
        dest->children[i + 1] = dest->children[i];
      }
      dest->keys[dest_idx] = std::move(up.sep);
      dest->children[dest_idx + 1] = right_child;
      ++dest->count;

      up.sep = std::move(sep_up);
      up.right = right;
    }
  }

  if (up.split) {
    InnerNode* new_root = new InnerNode();
    new_root->count = 1;
    new_root->keys[0] = std::move(up.sep);
    new_root->children[0] = root_;
    new_root->children[1] = static_cast<Node*>(up.right);
    root_ = new_root;
    ++height_;
  }
}

void BTreeRowIndex::Erase(const Value& key, RowId id) {
  LeafNode* leaf = LeafFor(key);
  int pos = LowerBound(leaf->keys, leaf->count, key);
  if (pos >= leaf->count || leaf->keys[pos].Compare(key) != 0) return;
  PostingList& ids = leaf->posts[pos];
  auto it = std::find(ids.begin(), ids.end(), id);
  if (it == ids.end()) return;
  ids.erase(it);
  if (!ids.empty()) return;
  // Drop the emptied key. No rebalancing: the only erase path is vacuum,
  // and an underfull (even empty) leaf stays structurally valid — inner
  // separators keep routing correctly because they only bound subtrees.
  for (int i = pos + 1; i < leaf->count; ++i) {
    leaf->keys[i - 1] = std::move(leaf->keys[i]);
    leaf->posts[i - 1] = std::move(leaf->posts[i]);
  }
  --leaf->count;
  leaf->keys[leaf->count] = Value();       // release any heap payload
  leaf->posts[leaf->count] = PostingList();
  --key_count_;
  if (NeedsCompaction()) Compact();
}

bool BTreeRowIndex::NeedsCompaction() const {
  if (compaction_threshold_ <= 0) return false;
  if (leaf_count_ < kMinCompactionLeaves) return false;
  double capacity = static_cast<double>(leaf_count_) * kLeafFanout;
  return static_cast<double>(key_count_) < compaction_threshold_ * capacity;
}

void BTreeRowIndex::Compact() {
  // Gather every (key, id) in order — already sorted by construction, and
  // posting order survives because ids are appended in posting order — and
  // repack with the bulk loader.
  std::vector<std::pair<Value, RowId>> entries;
  entries.reserve(key_count_);
  for (LeafNode* leaf = FirstLeaf(); leaf != nullptr; leaf = leaf->next) {
    for (int i = 0; i < leaf->count; ++i) {
      for (RowId id : leaf->posts[i]) {
        entries.emplace_back(leaf->keys[i], id);
      }
    }
  }
  LoadSorted(std::move(entries));
  ++compaction_count_;
}

void BTreeRowIndex::Scan(const Value* lo, bool lo_inclusive, const Value* hi,
                         bool hi_inclusive,
                         const PostingVisitor& visit) const {
  LeafNode* leaf;
  int pos;
  if (lo != nullptr) {
    leaf = LeafFor(*lo);
    pos = lo_inclusive ? LowerBound(leaf->keys, leaf->count, *lo)
                       : UpperBound(leaf->keys, leaf->count, *lo);
  } else {
    leaf = FirstLeaf();
    pos = 0;
  }
  for (; leaf != nullptr; leaf = leaf->next, pos = 0) {
    for (; pos < leaf->count; ++pos) {
      if (hi != nullptr) {
        int c = leaf->keys[pos].Compare(*hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      if (!visit(leaf->keys[pos], leaf->posts[pos])) return;
    }
  }
}

void BTreeRowIndex::LoadSorted(std::vector<std::pair<Value, RowId>> entries) {
  DestroySubtree(root_);
  root_ = nullptr;
  key_count_ = 0;
  leaf_count_ = 0;
  height_ = 1;

  // Pack leaves full from the sorted run, grouping duplicate keys into one
  // posting. The tail leaf may be underfull — fine, nothing rebalances.
  std::vector<std::pair<Value, Node*>> level;  // (subtree min key, node)
  LeafNode* leaf = nullptr;
  LeafNode* prev = nullptr;
  for (size_t i = 0; i < entries.size(); ++i) {
    Value& key = entries[i].first;
    if (leaf != nullptr && leaf->count > 0 &&
        leaf->keys[leaf->count - 1].Compare(key) == 0) {
      leaf->posts[leaf->count - 1].push_back(entries[i].second);
      continue;
    }
    if (leaf == nullptr || leaf->count == kLeafFanout) {
      leaf = new LeafNode();
      ++leaf_count_;
      if (prev != nullptr) prev->next = leaf;
      prev = leaf;
    }
    if (leaf->count == 0) level.emplace_back(key, leaf);
    leaf->keys[leaf->count] = std::move(key);
    leaf->posts[leaf->count] = PostingList{entries[i].second};
    ++leaf->count;
    ++key_count_;
  }
  if (level.empty()) {
    root_ = new LeafNode();
    leaf_count_ = 1;
    return;
  }

  // Build inner levels bottom-up: chunks of up to kInnerFanout+1 children,
  // never leaving a single orphan child in the last chunk.
  while (level.size() > 1) {
    std::vector<std::pair<Value, Node*>> next_level;
    size_t i = 0;
    while (i < level.size()) {
      size_t remaining = level.size() - i;
      size_t take = std::min<size_t>(kInnerFanout + 1, remaining);
      if (remaining - take == 1) --take;  // leave >= 2 for the final chunk
      InnerNode* inner = new InnerNode();
      inner->count = static_cast<int>(take) - 1;
      for (size_t j = 0; j < take; ++j) {
        inner->children[j] = level[i + j].second;
        if (j > 0) inner->keys[j - 1] = std::move(level[i + j].first);
      }
      next_level.emplace_back(std::move(level[i].first), inner);
      i += take;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level[0].second;
}

// ---------------------------------------------------------------------------
// StdMapRowIndex — the historical std::map backend, verbatim semantics.
// ---------------------------------------------------------------------------

void StdMapRowIndex::Erase(const Value& key, RowId id) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  PostingList& ids = it->second;
  auto pos = std::find(ids.begin(), ids.end(), id);
  if (pos == ids.end()) return;
  ids.erase(pos);
  if (ids.empty()) map_.erase(it);
}

void StdMapRowIndex::Scan(const Value* lo, bool lo_inclusive, const Value* hi,
                          bool hi_inclusive,
                          const PostingVisitor& visit) const {
  auto begin = map_.begin();
  if (lo != nullptr) {
    begin = lo_inclusive ? map_.lower_bound(*lo) : map_.upper_bound(*lo);
  }
  for (auto it = begin; it != map_.end(); ++it) {
    if (hi != nullptr) {
      int c = it->first.Compare(*hi);
      if (c > 0 || (c == 0 && !hi_inclusive)) return;
    }
    if (!visit(it->first, it->second)) return;
  }
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

std::unique_ptr<OrderedRowIndex> OrderedRowIndex::Create(
    IndexBackend backend) {
  if (backend == IndexBackend::kStdMap) {
    return std::make_unique<StdMapRowIndex>();
  }
  return std::make_unique<BTreeRowIndex>();
}

std::unique_ptr<OrderedRowIndex> OrderedRowIndex::BulkLoad(
    IndexBackend backend, std::vector<std::pair<Value, RowId>> entries) {
  if (backend == IndexBackend::kStdMap) {
    auto index = std::make_unique<StdMapRowIndex>();
    for (auto& [key, id] : entries) index->Insert(key, id);
    return index;
  }
  auto index = std::make_unique<BTreeRowIndex>();
  index->LoadSorted(std::move(entries));
  return index;
}

}  // namespace brdb
