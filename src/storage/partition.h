// Deterministic partition assignment (ROADMAP item 4).
//
// A table declares at most one partition column; every row version is
// assigned to partition PartitionOfValue(values[partition_column]) at
// append time and the assignment never changes (version payloads are
// immutable). The SAME function pins equality predicates on the partition
// column to a single partition group, which is what makes the partitioned
// SSI bookkeeping exact: a writer probing the partition of the value it
// writes sees precisely the readers that registered for that value.
//
// Requirements on the function:
//  * pure — no per-process seed, no pointer identity, no locale. Every
//    node, every restart and every partition count must agree, because
//    commit/abort decisions must stay byte-identical across partition
//    counts {1, 2, 8} (check.sh invariant).
//  * type-strict — Int(1) and Double(1.0) hash differently. Predicate
//    pinning therefore only pins when the constant's type matches the
//    declared column type exactly; everything else registers in every
//    partition group (correct, just unpruned).
#ifndef BRDB_STORAGE_PARTITION_H_
#define BRDB_STORAGE_PARTITION_H_

#include <cstdint>
#include <cstring>

#include "common/value.h"

namespace brdb {

/// Hard cap on partition groups: the per-transaction touched-partition set
/// is a uint64_t bitmask.
inline constexpr size_t kMaxPartitions = 64;

/// FNV-1a over the value's type tag and canonical payload bytes.
/// `partitions` must be a power of two (TxnManager normalizes it).
inline uint32_t PartitionOfValue(const Value& v, size_t partitions) {
  if (partitions <= 1) return 0;
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](const void* data, size_t len) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < len; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;  // FNV-1a prime
    }
  };
  const uint8_t tag = static_cast<uint8_t>(v.type());
  mix(&tag, 1);
  switch (v.type()) {
    case ValueType::kInt: {
      int64_t x = v.AsInt();
      mix(&x, sizeof(x));
      break;
    }
    case ValueType::kBool: {
      uint8_t b = v.AsBool() ? 1 : 0;
      mix(&b, 1);
      break;
    }
    case ValueType::kDouble: {
      double d = v.AsDouble();
      uint64_t bits = 0;
      std::memcpy(&bits, &d, sizeof(bits));
      mix(&bits, sizeof(bits));
      break;
    }
    case ValueType::kText: {
      const std::string& s = v.AsText();
      mix(s.data(), s.size());
      break;
    }
    case ValueType::kNull:
      break;  // type tag alone: all NULLs share one partition
  }
  h ^= h >> 33;  // fold high entropy into the masked low bits
  return static_cast<uint32_t>(h & (partitions - 1));
}

}  // namespace brdb

#endif  // BRDB_STORAGE_PARTITION_H_
