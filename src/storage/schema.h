// Table schemas and the column metadata the executor binds against.
//
// Supported column constraints: PRIMARY KEY (single column; implies UNIQUE,
// NOT NULL and an index), UNIQUE (implies an index), NOT NULL, and
// table-level CHECK expressions (stored as SQL text, evaluated by the SQL
// executor on every insert/update).
#ifndef BRDB_STORAGE_SCHEMA_H_
#define BRDB_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace brdb {

using TableId = uint32_t;

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
  bool not_null = false;
  bool primary_key = false;
  bool unique = false;
  bool indexed = false;  ///< true when any index (pk/unique/secondary) exists
};

class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns);

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of the PRIMARY KEY column, or -1 when the table has none.
  int pk_column() const { return pk_column_; }

  /// Index of the PARTITION BY column, or -1 for an unpartitioned table
  /// (every row lands in partition 0). Declared by CREATE TABLE ...
  /// PARTITION BY HASH(col); assignment is storage/partition.h's pure
  /// hash of the row's value in this column.
  int partition_column() const { return partition_column_; }
  void SetPartitionColumn(int column) { partition_column_ = column; }

  /// Column position by name; -1 when absent.
  int ColumnIndex(const std::string& name) const;

  /// CHECK constraint expressions (raw SQL text) attached to this table.
  const std::vector<std::string>& check_constraints() const {
    return checks_;
  }
  void AddCheckConstraint(std::string expr) {
    checks_.push_back(std::move(expr));
  }

  /// Validate a row against arity, types (NULL is acceptable for nullable
  /// columns; ints are accepted where doubles are declared) and NOT NULL.
  /// CHECK/UNIQUE are enforced elsewhere (executor / commit pipeline).
  Status ValidateRow(const Row& row) const;

  /// Mark a column as indexed (when CREATE INDEX runs after CREATE TABLE).
  Status MarkIndexed(const std::string& column);

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<std::string> checks_;
  int pk_column_ = -1;
  int partition_column_ = -1;
};

}  // namespace brdb

#endif  // BRDB_STORAGE_SCHEMA_H_
