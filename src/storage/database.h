// Database: the catalog of tables on one node, plus its transaction
// manager. Each node creates a `blockchain` schema (replicated, transactions
// flow through consensus) and may create `private` tables (the paper's
// non-blockchain schema, §3.7) which are local to the organization.
// System tables (pgledger, pgcerts, pgdeploy) are created at startup.
#ifndef BRDB_STORAGE_DATABASE_H_
#define BRDB_STORAGE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"
#include "txn/txn_manager.h"

namespace brdb {

/// Well-known schema names.
inline constexpr const char* kBlockchainSchema = "blockchain";
inline constexpr const char* kPrivateSchema = "private";
inline constexpr const char* kSystemSchema = "system";

// System table names (paper §4.2).
inline constexpr const char* kLedgerTable = "pgledger";
inline constexpr const char* kCertsTable = "pgcerts";
inline constexpr const char* kDeployTable = "pgdeploy";

class Database {
 public:
  /// Creates the system tables. `txn_options` tunes the transaction
  /// manager's lock striping (benchmarks pass stripes=1 for the historical
  /// single-mutex baseline); `index_backend` selects the ordered-index
  /// implementation every table uses (kStdMap is the pre-B-tree baseline
  /// kept for parity/determinism tests).
  explicit Database(const TxnManagerOptions& txn_options = {},
                    IndexBackend index_backend = IndexBackend::kBTree);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Create a user table in the given schema.
  Result<Table*> CreateTable(TableSchema schema,
                             const std::string& db_schema = kBlockchainSchema);

  Result<Table*> GetTable(const std::string& name);
  Table* GetTableById(TableId id);

  Status DropTable(const std::string& name);

  std::vector<std::string> TableNames() const;

  /// All tables ordered by id. Checkpoint capture iterates this: the
  /// stable order makes the checkpoint bytes deterministic across nodes.
  std::vector<Table*> TablesById() const;

  // ---- Checkpoint restore (ledger/checkpoint_writer.h) ----

  /// Drop every table — system tables included — ahead of RestoreTable
  /// calls. Only valid while no transactions are running.
  void ResetForRestore();

  /// Re-create a table under its original id. Checkpoints keep table ids
  /// stable because RowId links are per-table and plan caches key on ids.
  Result<Table*> RestoreTable(TableId id, TableSchema schema,
                              const std::string& db_schema);

  /// Finish a restore: place the table-id counter past every restored id
  /// and invalidate cached statement plans.
  void FinishRestore(TableId next_table_id);

  /// Abandon a failed restore: wipe everything and re-create the system
  /// tables, returning to the just-constructed state (the caller then
  /// replays from genesis instead).
  void ResetToPristine();

  TxnManager* txn_manager() { return &txn_manager_; }

  IndexBackend index_backend() const { return index_backend_; }

  /// Monotonic catalog version: bumped by every CREATE/DROP TABLE and by
  /// CREATE INDEX (via BumpSchemaVersion). Cached statement plans are keyed
  /// on it so DDL invalidates them (sql/executor.h).
  uint64_t schema_version() const {
    return schema_version_.load(std::memory_order_acquire);
  }
  void BumpSchemaVersion() {
    schema_version_.fetch_add(1, std::memory_order_acq_rel);
  }

 private:
  void CreateSystemTables();

  std::atomic<uint64_t> schema_version_{0};
  IndexBackend index_backend_;
  mutable std::mutex mu_;
  TableId next_table_id_ = 1;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<TableId, Table*> by_id_;
  /// Dropped tables are retired here instead of destroyed so off-thread
  /// checkpoint captures holding Table* from an earlier pin stay safe.
  std::vector<std::unique_ptr<Table>> dropped_;
  TxnManager txn_manager_;
};

}  // namespace brdb

#endif  // BRDB_STORAGE_DATABASE_H_
