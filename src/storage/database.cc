#include "storage/database.h"

#include <algorithm>

namespace brdb {

Database::Database(const TxnManagerOptions& txn_options,
                   IndexBackend index_backend)
    : index_backend_(index_backend), txn_manager_(txn_options) {
  CreateSystemTables();
}

void Database::CreateSystemTables() {
  // pgledger: one row per transaction per block (paper §4.2). Status is
  // written in a second pass once the whole block is decided (§3.6).
  {
    TableSchema schema(
        kLedgerTable,
        {{"block_num", ValueType::kInt, true, false, false, true},
         {"tx_seq", ValueType::kInt, true, false, false, false},
         {"txid", ValueType::kText, true, false, false, true},
         {"local_txn", ValueType::kInt, false, false, false, false},
         {"username", ValueType::kText, true, false, false, true},
         {"contract", ValueType::kText, true, false, false, false},
         {"args", ValueType::kText, false, false, false, false},
         {"status", ValueType::kText, false, false, false, false},
         {"commit_time", ValueType::kInt, false, false, false, false}});
    auto r = CreateTable(std::move(schema), kSystemSchema);
    (void)r;
  }
  // pgcerts: user name -> public key and role.
  {
    TableSchema schema(
        kCertsTable,
        {{"username", ValueType::kText, true, true, false, false},
         {"org", ValueType::kText, true, false, false, false},
         {"role", ValueType::kText, true, false, false, false},
         {"pubkey", ValueType::kInt, true, false, false, false}});
    auto r = CreateTable(std::move(schema), kSystemSchema);
    (void)r;
  }
  // pgdeploy: smart-contract deployment governance (paper §3.7).
  {
    TableSchema schema(
        kDeployTable,
        {{"deploy_id", ValueType::kInt, true, true, false, false},
         {"sql_text", ValueType::kText, true, false, false, false},
         {"proposer", ValueType::kText, true, false, false, false},
         {"status", ValueType::kText, true, false, false, false},
         {"approvals", ValueType::kText, false, false, false, false},
         {"rejections", ValueType::kText, false, false, false, false},
         {"comments", ValueType::kText, false, false, false, false}});
    auto r = CreateTable(std::move(schema), kSystemSchema);
    (void)r;
  }
}

Result<Table*> Database::CreateTable(TableSchema schema,
                                     const std::string& db_schema) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string name = schema.name();  // copy: schema is moved below
  if (name.empty()) return Status::InvalidArgument("table needs a name");
  if (tables_.count(name)) {
    return Status::AlreadyExists("table " + name + " already exists");
  }
  TableId id = next_table_id_++;
  auto table = std::make_unique<Table>(id, std::move(schema), db_schema,
                                       index_backend_,
                                       txn_manager_.partitions());
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  by_id_.emplace(id, ptr);
  BumpSchemaVersion();
  return ptr;
}

Result<Table*> Database::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  return it->second.get();
}

Table* Database::GetTableById(TableId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

Status Database::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named " + name);
  }
  if (it->second->db_schema() == kSystemSchema) {
    return Status::PermissionDenied("cannot drop system table " + name);
  }
  by_id_.erase(it->second->id());
  // Retire, don't destroy: an off-thread checkpoint capture pinned at an
  // earlier block height may still be reading this table's versions. The
  // arena is append-only, so keeping the object alive until shutdown is
  // safe and costs only what the dropped table already held.
  dropped_.push_back(std::move(it->second));
  tables_.erase(it);
  BumpSchemaVersion();
  return Status::OK();
}

std::vector<Table*> Database::TablesById() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Table*> out;
  out.reserve(by_id_.size());
  for (const auto& [id, table] : by_id_) out.push_back(table);
  return out;
}

void Database::ResetForRestore() {
  std::lock_guard<std::mutex> lock(mu_);
  by_id_.clear();
  tables_.clear();
  next_table_id_ = 1;
  BumpSchemaVersion();
}

Result<Table*> Database::RestoreTable(TableId id, TableSchema schema,
                                      const std::string& db_schema) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string name = schema.name();
  if (name.empty() || id == 0) {
    return Status::InvalidArgument("restored table needs a name and an id");
  }
  if (tables_.count(name) || by_id_.count(id)) {
    return Status::AlreadyExists("restored table " + name + " (id " +
                                 std::to_string(id) + ") collides");
  }
  auto table = std::make_unique<Table>(id, std::move(schema), db_schema,
                                       index_backend_,
                                       txn_manager_.partitions());
  Table* ptr = table.get();
  tables_.emplace(name, std::move(table));
  by_id_.emplace(id, ptr);
  return ptr;
}

void Database::ResetToPristine() {
  ResetForRestore();
  CreateSystemTables();
}

void Database::FinishRestore(TableId next_table_id) {
  std::lock_guard<std::mutex> lock(mu_);
  next_table_id_ = std::max(next_table_id_, next_table_id);
  BumpSchemaVersion();
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace brdb
