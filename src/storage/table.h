// Table: an append-only heap of row versions plus ordered indexes.
//
// Like PostgreSQL (paper §4.1), an UPDATE never modifies a row in place: it
// flags the old version as deleted (xmax / deleter block) and appends a new
// version. All versions are retained, which is what makes the block-height
// snapshot (Figure 3) and provenance queries (§4.2) possible. Unlike vanilla
// PostgreSQL, a row version accepts multiple concurrent xmax *candidates*
// (§3.3.3): competing writers never block; the serial commit phase lets the
// block-order winner finalize the delete and dooms the losers.
//
// Thread-safety: version payloads (values, xmin, prev link) are immutable
// after append and may be read without locking; the mutable metadata (xmax,
// candidates, creator/deleter block, next link) is accessed through locked
// accessors. Index structures are guarded by the same mutex.
//
// The version heap is an append-only chunked arena (exponentially growing
// chunks behind an atomic chunk directory, size published with a release
// store) so that the lock-free payload reads are actually race-free: a
// std::deque would move its internal bookkeeping under concurrent
// push_back, which is exactly the kind of silent data race ThreadSanitizer
// flags.
#ifndef BRDB_STORAGE_TABLE_H_
#define BRDB_STORAGE_TABLE_H_

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/btree.h"
#include "storage/schema.h"
#include "txn/types.h"

namespace brdb {

inline constexpr RowId kInvalidRowId = ~0ULL;

/// One stored version of a logical row.
struct RowVersion {
  // Immutable after append.
  TxnId xmin = 0;                   ///< creating transaction
  RowId prev_version = kInvalidRowId;
  uint32_t partition = 0;  ///< PartitionOfValue of the partition column
  Row values;

  // Mutable, guarded by the table mutex.
  bool creator_aborted = false;     ///< creating txn aborted: never visible
  TxnId xmax = 0;                   ///< committed deleter (0 = live)
  std::vector<TxnId> xmax_candidates;  ///< uncommitted competing deleters
  BlockNum creator_block = 0;       ///< block whose commit created the row
  BlockNum deleter_block = 0;       ///< block whose commit deleted the row
  RowId next_version = kInvalidRowId;
};

/// Snapshot of the mutable metadata of one version, copied under lock.
struct VersionMeta {
  TxnId xmin = 0;
  bool creator_aborted = false;
  TxnId xmax = 0;
  std::vector<TxnId> xmax_candidates;
  BlockNum creator_block = 0;
  BlockNum deleter_block = 0;
  RowId next_version = kInvalidRowId;
  RowId prev_version = kInvalidRowId;
};

class Table {
 public:
  /// `partitions` is the node's (power-of-two) partition-group count; rows
  /// are stamped with their partition at append time so SSI bookkeeping can
  /// route by partition without recomputing the hash per access.
  Table(TableId id, TableSchema schema, std::string db_schema,
        IndexBackend index_backend = IndexBackend::kBTree,
        size_t partitions = 1);
  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }
  const TableSchema& schema() const { return schema_; }
  TableSchema* mutable_schema() { return &schema_; }

  /// "blockchain" or "private" (paper §3.7's non-blockchain schema).
  const std::string& db_schema() const { return db_schema_; }

  /// Which ordered-index implementation this table's indexes use.
  IndexBackend index_backend() const { return index_backend_; }

  /// Create an ordered index on `column`; backfills existing versions.
  Status CreateIndex(const std::string& column);
  bool HasIndexOn(int column) const;

  /// Run `fn` with the index on `column` under the table lock (nullptr when
  /// absent). Observability only — compaction stats, leaf counts; must not
  /// mutate or retain the pointer.
  void WithIndexOn(int column,
                   const std::function<void(const OrderedRowIndex*)>& fn) const;

  /// Append a new version created by `xmin`; registers it in every index
  /// immediately (so concurrent scans can detect invisible-but-matching
  /// versions for SSI phantom tracking). Returns its RowId.
  RowId AppendVersion(TxnId xmin, Row values, RowId prev_version);

  size_t NumVersions() const;

  /// Immutable payload access (safe without the lock). An invalid RowId is
  /// a caller bug; it fails loudly (BRDB_CHECK) instead of reading out of
  /// bounds.
  const Row& ValuesOf(RowId id) const;
  TxnId XminOf(RowId id) const;

  /// Partition group of a version, stamped at append/restore time
  /// (immutable, lock-free — SSI records SIREADs before taking any table
  /// lock, so this must not lock).
  uint32_t PartitionOf(RowId id) const;

  /// Partition-group count this table stamps rows against (power of two).
  size_t partitions() const { return partitions_; }

  /// Copy of the mutable metadata. Fails loudly on an invalid RowId.
  VersionMeta MetaOf(RowId id) const;

  /// Batch variant: copies the metadata of `count` ids under ONE lock
  /// acquisition into `out` (grown to count; element capacity is reused
  /// across calls). Scan loops use this instead of per-row MetaOf.
  void MetasOf(const RowId* ids, size_t count,
               std::vector<VersionMeta>* out) const;
  void MetasOf(const std::vector<RowId>& ids,
               std::vector<VersionMeta>* out) const {
    MetasOf(ids.data(), ids.size(), out);
  }

  /// Register `txn` as an uncommitted deleter of `id`. Multiple candidates
  /// are allowed; a committed xmax rejects further candidates.
  Status AddXmaxCandidate(RowId id, TxnId txn);

  /// Undo a candidate registration (abort path).
  void RemoveXmaxCandidate(RowId id, TxnId txn);

  /// Commit-time: `winner` becomes the committed deleter at `block`; all
  /// other candidates are returned so the caller can doom them.
  std::vector<TxnId> FinalizeDelete(RowId id, TxnId winner, BlockNum block);

  /// Commit-time: stamp the creating block of a version.
  void SetCreatorBlock(RowId id, BlockNum block);

  /// Abort-time tombstone: the creating transaction rolled back, so this
  /// version must never become visible (persists across transaction-manager
  /// garbage collection).
  void MarkCreatorAborted(RowId id);

  /// Link old -> new version after an update commits (provenance chain).
  void LinkNextVersion(RowId old_id, RowId next_id);

  /// All version ids, in append order (full scan).
  std::vector<RowId> ScanAllRowIds() const;

  /// Allocation-lean variant: clears `out` and fills it in place so scan
  /// loops can reuse one buffer instead of allocating per scan.
  void ScanAllRowIds(std::vector<RowId>* out) const;

  /// Version ids whose `column` value lies in [lo, hi] (either bound may be
  /// null = unbounded, inclusive flags per bound), in index order. Requires
  /// an index on `column`.
  Result<std::vector<RowId>> IndexRange(int column, const Value* lo,
                                        bool lo_inclusive, const Value* hi,
                                        bool hi_inclusive) const;

  /// Allocation-lean variant of IndexRange; clears and fills `out`.
  Status IndexRange(int column, const Value* lo, bool lo_inclusive,
                    const Value* hi, bool hi_inclusive,
                    std::vector<RowId>* out) const;

  // ---- Checkpoint restore (ledger/checkpoint_writer.h) ----

  /// Append a version rebuilt from a checkpoint at the next RowId, with its
  /// metadata already final. xmin — and xmax, when `deleter_block` is
  /// nonzero — is the reserved kRestoredTxnId sentinel, which status
  /// lookups report as committed-long-ago. Registered in every index.
  RowId RestoreVersion(Row values, RowId prev_version, RowId next_version,
                       BlockNum creator_block, BlockNum deleter_block);

  /// Occupy the next RowId with an invisible tombstone — a slot that was
  /// vacuumed, aborted, or still in flight when the checkpoint was taken —
  /// so the RowId links between restored versions stay valid.
  RowId RestoreHole();

  /// Whether `id` was vacuumed (dead slots are skipped by every scan and
  /// serialize as holes in checkpoints).
  bool IsDead(RowId id) const;

  /// Remove versions that can never become visible again: versions created
  /// by aborted transactions, and committed-deleted versions whose deleter
  /// block is at or below `horizon_block`. `aborted` decides whether a
  /// transaction id is aborted. Returns the number of versions removed.
  /// This is the paper's §7 "vacuum based on creator/deleter" pruning tool;
  /// it breaks provenance for pruned history, so nodes only call it when
  /// explicitly configured.
  size_t Vacuum(BlockNum horizon_block,
                const std::function<bool(TxnId)>& aborted);

 private:
  /// Allocate (if needed) the chunk holding slot `id` and return the slot;
  /// requires mu_. Callers fill the slot, then release-publish via
  /// num_versions_.
  RowVersion& EmplaceSlotLocked(RowId id);

  // Chunked version arena. Chunk c holds 2^(c + kFirstChunkBits) versions;
  // the directory entries are written once (under mu_) and published by
  // the release store of num_versions_, so readers that checked an id
  // against NumVersions() may chase them without the lock.
  static constexpr size_t kFirstChunkBits = 9;  // 512 versions in chunk 0
  static constexpr size_t kNumChunks = 48;

  static size_t ChunkOf(RowId id, size_t* offset) {
    uint64_t adjusted = id + (1ULL << kFirstChunkBits);
    size_t chunk =
        63 - static_cast<size_t>(__builtin_clzll(adjusted)) - kFirstChunkBits;
    *offset = adjusted ^ (1ULL << (chunk + kFirstChunkBits));
    return chunk;
  }

  const RowVersion& VersionAt(RowId id) const {
    size_t offset = 0;
    size_t chunk = ChunkOf(id, &offset);
    return chunks_[chunk].load(std::memory_order_acquire)[offset];
  }
  RowVersion& VersionAt(RowId id) {
    size_t offset = 0;
    size_t chunk = ChunkOf(id, &offset);
    return chunks_[chunk].load(std::memory_order_acquire)[offset];
  }

  /// Versions appended so far; acquire pairs with AppendVersion's release.
  size_t Size() const { return num_versions_.load(std::memory_order_acquire); }

  /// Partition stamp for a row about to be appended; requires mu_ only for
  /// consistency with the append path (reads immutable schema state).
  uint32_t PartitionOfValues(const Row& values) const;

  TableId id_;
  TableSchema schema_;
  std::string db_schema_;
  IndexBackend index_backend_;
  size_t partitions_ = 1;

  mutable std::mutex mu_;
  std::array<std::atomic<RowVersion*>, kNumChunks> chunks_{};
  std::atomic<size_t> num_versions_{0};
  /// Ordered indexes keyed densely by column position (null = no index);
  /// `indexed_columns_` lists the non-null slots so write-path maintenance
  /// iterates only real indexes.
  std::vector<std::unique_ptr<OrderedRowIndex>> indexes_;
  std::vector<int> indexed_columns_;
  std::vector<bool> dead_;  // vacuumed tombstones
};

}  // namespace brdb

#endif  // BRDB_STORAGE_TABLE_H_
