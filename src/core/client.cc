#include "core/client.h"

namespace brdb {

Client::Client(Identity identity, OrderingService* ordering,
               std::vector<DatabaseNode*> nodes)
    : Client(std::move(identity),
             std::make_shared<InProcessTransport>(ordering,
                                                  std::move(nodes))) {}

Client::Client(Identity identity, std::shared_ptr<Transport> transport)
    : session_(std::move(identity), std::move(transport)) {}

Result<std::string> Client::Invoke(const std::string& contract,
                                   std::vector<Value> args) {
  TxnHandle handle = session_.Submit(contract, std::move(args));
  if (!handle.submit_status().ok()) return handle.submit_status();
  return handle.txid();
}

Transaction Client::MakeTransaction(const std::string& contract,
                                    std::vector<Value> args) {
  // Legacy signature cannot report a failed EOP height probe; an unsigned
  // empty transaction (which fails authentication) is the least-bad
  // degradation. New code should use Session::MakeTransaction.
  auto tx = session_.MakeTransaction(contract, std::move(args));
  return tx.ok() ? std::move(tx).value() : Transaction();
}

Status Client::WaitForCommit(const std::string& txid, Micros timeout_us) {
  return session_.Track(txid).Wait(timeout_us);
}

Status Client::WaitForDecisionOnAllNodes(const std::string& txid,
                                         Micros timeout_us) {
  return session_.Track(txid).WaitAllNodes(timeout_us);
}

std::map<std::string, Status> Client::StatusesOf(const std::string& txid) {
  return session_.Track(txid).NodeStatuses();
}

BlockNum Client::DecidedBlockOf(const std::string& txid) {
  return session_.Track(txid).CommitBlock();
}

Result<sql::ResultSet> Client::Query(const std::string& sql,
                                     const std::vector<Value>& params) {
  return session_.Query(sql, params);
}

Result<sql::ResultSet> Client::ProvenanceQuery(
    const std::string& sql, const std::vector<Value>& params) {
  return session_.ProvenanceQuery(sql, params);
}

}  // namespace brdb
