#include "core/client.h"

namespace brdb {

Client::Client(Identity identity, OrderingService* ordering,
               std::vector<DatabaseNode*> nodes)
    : identity_(std::move(identity)),
      ordering_(ordering),
      nodes_(std::move(nodes)) {
  for (DatabaseNode* node : nodes_) {
    std::string name = node->name();
    node->Subscribe([this, name](const TxnNotification& n) {
      OnNotification(name, n);
    });
  }
}

void Client::OnNotification(const std::string& node,
                            const TxnNotification& n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    decisions_[n.txid][node] = n.status;
    BlockNum& best = decided_block_[n.txid];
    if (n.block > best) best = n.block;
  }
  cv_.notify_all();
}

Transaction Client::MakeTransaction(const std::string& contract,
                                    std::vector<Value> args) {
  bool eop = !nodes_.empty() &&
             nodes_[0]->config().flow ==
                 TransactionFlow::kExecuteOrderParallel;
  if (eop) {
    size_t idx = rr_.fetch_add(1) % nodes_.size();
    BlockNum height = nodes_[idx]->Height();
    return Transaction::MakeExecuteOrderParallel(identity_, contract,
                                                 std::move(args), height);
  }
  std::string id =
      identity_.name + "-" + std::to_string(counter_.fetch_add(1));
  return Transaction::MakeOrderThenExecute(identity_, std::move(id), contract,
                                           std::move(args));
}

Result<std::string> Client::Invoke(const std::string& contract,
                                   std::vector<Value> args) {
  bool eop = !nodes_.empty() &&
             nodes_[0]->config().flow ==
                 TransactionFlow::kExecuteOrderParallel;
  if (eop) {
    size_t idx = rr_.fetch_add(1) % nodes_.size();
    DatabaseNode* node = nodes_[idx];
    Transaction tx = Transaction::MakeExecuteOrderParallel(
        identity_, contract, std::move(args), node->Height());
    BRDB_RETURN_NOT_OK(node->SubmitTransaction(tx));
    return tx.id();
  }
  Transaction tx = MakeTransaction(contract, std::move(args));
  BRDB_RETURN_NOT_OK(ordering_->SubmitTransaction(tx));
  return tx.id();
}

Status Client::WaitForCommit(const std::string& txid, Micros timeout_us) {
  const size_t majority = nodes_.size() / 2 + 1;
  std::unique_lock<std::mutex> lock(mu_);
  auto decided = [&]() -> std::optional<Status> {
    auto it = decisions_.find(txid);
    if (it == decisions_.end()) return std::nullopt;
    size_t ok = 0, failed = 0;
    Status failure;
    for (const auto& [node, st] : it->second) {
      if (st.ok()) {
        ++ok;
      } else {
        ++failed;
        failure = st;
      }
    }
    if (ok >= majority) return Status::OK();
    if (failed >= majority) return failure;
    return std::nullopt;
  };
  std::optional<Status> result;
  cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [&] {
    result = decided();
    return result.has_value();
  });
  if (result.has_value()) return *result;
  return Status::Unavailable("transaction " + txid +
                             " not decided before timeout");
}

Status Client::WaitForDecisionOnAllNodes(const std::string& txid,
                                         Micros timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  bool all = cv_.wait_for(lock, std::chrono::microseconds(timeout_us), [&] {
    auto it = decisions_.find(txid);
    return it != decisions_.end() && it->second.size() == nodes_.size();
  });
  if (!all) {
    return Status::Unavailable("transaction " + txid +
                               " not decided on all nodes before timeout");
  }
  for (const auto& [node, st] : decisions_[txid]) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

BlockNum Client::DecidedBlockOf(const std::string& txid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = decided_block_.find(txid);
  return it == decided_block_.end() ? 0 : it->second;
}

std::map<std::string, Status> Client::StatusesOf(const std::string& txid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = decisions_.find(txid);
  return it == decisions_.end() ? std::map<std::string, Status>{}
                                : it->second;
}

Result<sql::ResultSet> Client::Query(const std::string& sql,
                                     const std::vector<Value>& params,
                                     size_t node_index) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("no such node");
  }
  return nodes_[node_index]->Query(identity_.name, sql, params);
}

Result<sql::ResultSet> Client::ProvenanceQuery(
    const std::string& sql, const std::vector<Value>& params,
    size_t node_index) {
  if (node_index >= nodes_.size()) {
    return Status::InvalidArgument("no such node");
  }
  return nodes_[node_index]->ProvenanceQuery(identity_.name, sql, params);
}

}  // namespace brdb
