// DatabaseNode: one organization's database peer (the modified PostgreSQL
// instance of the paper, §4). It owns the storage engine, SQL engine,
// contract registry, block store, checkpoint manager and the block
// processor implementing both transaction flows:
//
//   order-then-execute (§3.3): blocks arrive from ordering; all
//   transactions of a block execute concurrently on the state committed by
//   the previous block (CSN snapshot); the block processor then signals
//   each backend serially in block order to validate (abort-during-commit
//   SSI) and commit.
//
//   execute-order-in-parallel (§3.4): clients submit to a peer, which
//   authenticates, forwards to other peers and the ordering service, and
//   starts execution immediately at the client-specified snapshot height
//   (block-height SSI). When the block arrives, missing transactions are
//   started, execution completion is awaited, and the serial commit runs
//   the block-aware abort rules of Table 2.
//
// Both flows then update the pgledger statuses atomically, compute the
// block's write-set hash, and take part in checkpointing (§3.3.4).
//
// Block processing is staged through a BlockPipeline
// (core/block_pipeline.h): verification and execution of block N+1 may
// overlap block N's serial commit up to a bounded in-flight window
// (NodeConfig::pipeline_depth), while commits, registry ops and decision
// notifications remain strictly block-ordered.
#ifndef BRDB_CORE_NODE_H_
#define BRDB_CORE_NODE_H_

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <random>
#include <thread>

#include "common/thread_pool.h"
#include "consensus/ordering_service.h"
#include "contracts/contract.h"
#include "contracts/system_contracts.h"
#include "core/block_pipeline.h"
#include "core/metrics.h"
#include "crypto/sig_verifier.h"
#include "ledger/block_store.h"
#include "ledger/checkpoint.h"
#include "ledger/checkpoint_writer.h"
#include "ledger/fault_injector.h"
#include "ledger/history_builder.h"
#include "network/chaos.h"
#include "network/sim_network.h"
#include "sql/executor.h"
#include "storage/database.h"
#include "txn/txn_context.h"

namespace brdb {

inline constexpr const char* kMsgForwardTx = "fwd_tx";

enum class TransactionFlow {
  kOrderThenExecute,
  kExecuteOrderParallel,
};

struct NodeConfig {
  std::string name;  ///< unique peer name, e.g. "peer-org1"
  std::string org;
  TransactionFlow flow = TransactionFlow::kOrderThenExecute;
  size_t executor_threads = 8;

  /// Lock stripes for the transaction manager (0 = default; 1 = the
  /// historical single-mutex baseline, kept for benchmarks).
  size_t txn_lock_stripes = 0;

  /// Partition executor groups (ROADMAP item 4): tables whose schema
  /// declares PARTITION BY HASH shard rows across this many groups, each
  /// with its own executor threads and partition-local SSI bookkeeping.
  /// Commit/abort decisions and write-set hashes are byte-identical for
  /// every value. 0 = default ($BRDB_PARTITIONS if set, else 1); rounded
  /// up to a power of two, capped at kMaxPartitions.
  size_t partitions = 0;

  /// Max blocks in flight in the block pipeline: block N+1's signature
  /// verification and execution overlap block N's serial commit while
  /// commits and notifications stay strictly block-ordered. 0 = default
  /// ($BRDB_PIPELINE_DEPTH if set, else 2); 1 = the exact legacy serial
  /// verify -> execute -> commit loop, kept as the benchmark baseline.
  size_t pipeline_depth = 0;

  /// Ordered-index implementation for every table (kStdMap is the
  /// pre-B-tree baseline kept for parity/determinism tests).
  IndexBackend index_backend = IndexBackend::kBTree;

  /// Capacity of the signature verifier's FIFO-bounded verified cache
  /// (0 = default). Tests shrink it to exercise eviction + replay.
  size_t sig_cache_capacity = 0;
  std::string block_store_path;  ///< "" = in-memory block store

  /// Durability of the block log (ledger/block_store.h): fsync every
  /// append (default), every fsync_batch_blocks appends, or never.
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  size_t block_store_segment_bytes = 0;  ///< 0 = BlockStore default
  size_t fsync_batch_blocks = 0;         ///< 0 = BlockStore default

  /// Write a durable state checkpoint every N committed blocks
  /// (0 = disabled). Restart restores the newest valid checkpoint and
  /// replays only the block suffix instead of the whole chain. Requires a
  /// file-backed block store.
  size_t state_checkpoint_interval = 0;

  /// Block-store crash injection (tests only; must outlive the node).
  FaultInjector* fault_injector = nullptr;

  size_t checkpoint_interval = 1;
  size_t min_orderer_signatures = 1;
  bool submit_checkpoints = true;

  /// Fault injection (§3.5(3)): skip committing the last transaction of
  /// every block, producing divergent write-set hashes that honest peers
  /// detect through checkpointing. Legacy alias for byzantine.skip_commit;
  /// both are OR-ed into the node's armed policy.
  bool byzantine_skip_commit = false;

  /// Initial misbehavior policy (network/chaos.h). Runtime-armable too:
  /// a ChaosRunner can flip the policy mid-run via SetByzantinePolicy.
  ByzantinePolicy byzantine;

  /// Network chaos injector (must outlive the node). Used for the pure
  /// EndpointDown() check gating the paths that bypass SimNetwork: the
  /// §3.6 catch-up RPC and EOP direct ordering submission.
  NetworkFaultInjector* chaos = nullptr;

  /// Serial execution baseline (§5.1 "Comparison with Ethereum"): execute
  /// and commit transactions one at a time instead of concurrently.
  bool serial_execution = false;

  /// Columnar ledger history (storage/columnar.h): a background builder
  /// consumes the commit stream and seals immutable per-table columnar
  /// segments; client SELECTs touching only blockchain tables then run on
  /// the vectorized analytics path at a pinned block-height snapshot, with
  /// results byte-identical to the row store. Disabled: queries keep the
  /// legacy row-store path. $BRDB_ANALYTICS=0/1 overrides.
  bool analytics_columnar = true;

  /// Blocks per sealed segment (0 = default 16, or $BRDB_SEGMENT_BLOCKS).
  size_t analytics_segment_blocks = 0;

  /// Directory for the CRC-framed sealed-segment archive. "" = derive
  /// <block_store_path>/columnar when the block store is file-backed, else
  /// keep segments in memory only.
  std::string analytics_dir;
};

/// Which execution path Query() takes for an analytics-eligible SELECT.
enum class QueryPath {
  kDefault,   ///< columnar when eligible, row store otherwise
  kForceRow,  ///< row-store execution at the same pinned snapshot
              ///< (parity baseline for tests and benchmarks)
};

/// Final status of a transaction on this node, delivered to subscribers.
struct TxnNotification {
  std::string txid;
  Status status;
  BlockNum block = 0;
};

/// Execution bookkeeping for one in-flight transaction. Defined at
/// namespace level (BlockWork carries shared_ptrs between the pipeline's
/// prepare and commit stages) but owned and mutated by DatabaseNode.
struct ExecEntry {
  Transaction tx;
  std::unique_ptr<TxnContext> txn;
  Status exec_status;
  std::vector<RegistryOp> registry_ops;
  Micros exec_us = 0;
  bool done = false;       ///< execution finished (ready to commit/abort)
  bool doomed_invalid = false;
  /// Block that will commit this entry. 0 until a block's prepare stage
  /// claims it (EOP submissions execute unclaimed until their block
  /// arrives); a txid reappearing in a later block while the claiming
  /// block is still in flight is a duplicate. Guarded by the node's
  /// exec_mu_.
  BlockNum claimed_by_block = 0;
  /// Block whose prepare stage started this execution (0 = client
  /// submission / peer-forward path).
  BlockNum started_by_block = 0;
  /// Authentication was not decidable at prepare time (the user is not in
  /// the immutable bootstrap registry, and pgcerts may change until
  /// block-1 commits): the executor task authenticates in full after that
  /// height — the exact point the legacy serial loop authenticated at.
  bool auth_retry = false;
  PrincipalRole role = PrincipalRole::kClient;
};

class DatabaseNode {
 public:
  DatabaseNode(NodeConfig config, Identity identity,
               std::shared_ptr<CertificateRegistry> registry, SimNetwork* net,
               OrderingService* ordering);
  ~DatabaseNode();

  DatabaseNode(const DatabaseNode&) = delete;
  DatabaseNode& operator=(const DatabaseNode&) = delete;

  /// Register network endpoints, replay any persisted blocks (recovery,
  /// §3.6), and start the block processor.
  Status Start();
  void Stop();

  const std::string& name() const { return config_.name; }
  const std::string& endpoint() const { return endpoint_; }
  const NodeConfig& config() const { return config_; }
  bool running() const { return running_.load(); }

  Database* db() { return &db_; }
  sql::SqlEngine* sql_engine() { return &engine_; }
  ContractRegistry* contracts() { return &contracts_; }
  BlockStore* block_store() { return block_store_.get(); }
  CheckpointManager* checkpoints() { return &checkpoints_; }
  NodeMetrics* metrics() { return &metrics_; }
  ColumnStore* column_store() { return column_store_.get(); }
  HistoryBuilder* history_builder() { return history_.get(); }

  /// Committed block height (blocks whose serial commit finished).
  BlockNum Height() const;

  /// Pipeline frontier: blocks whose prepare stage (signature verification
  /// + execution start + ledger rows) finished. >= Height() when the block
  /// pipeline runs ahead of the serial commit; == Height() at depth 1.
  BlockNum ExecutedHeight() const;

  /// Resolved pipeline depth (config > $BRDB_PIPELINE_DEPTH > default 2).
  size_t pipeline_depth() const { return pipeline_depth_; }

  /// Resolved partition-group count (config > $BRDB_PARTITIONS > 1),
  /// normalized to a power of two.
  size_t partitions() const { return partitions_; }

  /// Other peers' endpoints (for EOP forwarding).
  void SetPeerEndpoints(std::vector<std::string> endpoints);

  /// Seed identity records (pgcerts) before the network starts — the
  /// §3.7 bootstrap step. Must be called identically on every node.
  Status SeedCertificate(const Identity& identity);

  /// Client entry point for execute-order-in-parallel: authenticate,
  /// forward to peers + ordering, execute locally (§3.4.1).
  Status SubmitTransaction(const Transaction& tx);

  /// Read-only query on this node (individual SELECT, not recorded on the
  /// chain, §3.7). `user` must be a registered identity.
  Result<sql::ResultSet> Query(const std::string& user, const std::string& sql,
                               const std::vector<Value>& params = {},
                               QueryPath path = QueryPath::kDefault);

  /// Provenance query: sees all committed row versions and the
  /// xmin/xmax/creator/deleter pseudo-columns (§4.2).
  Result<sql::ResultSet> ProvenanceQuery(const std::string& user,
                                         const std::string& sql,
                                         const std::vector<Value>& params = {});

  /// Prepare a read-only statement for `user`: parse + analyze through the
  /// SQL engine's plan cache and return the parameter metadata a client
  /// session binds against. Only SELECT statements may be prepared — the
  /// same restriction Query() enforces at execution (§3.7).
  Result<sql::PreparedInfo> PrepareQuery(const std::string& user,
                                         const std::string& sql);

  /// Non-blockchain ("private") schema (§3.7): organization-local tables on
  /// this node only, outside consensus. DDL creates tables in the private
  /// schema; DML may only touch private tables; SELECTs may freely combine
  /// private and blockchain tables (the paper's report/analytics use case).
  Result<sql::ResultSet> LocalExecute(const std::string& user,
                                      const std::string& sql,
                                      const std::vector<Value>& params = {});

  /// Prune row versions no longer visible to any snapshot at or above
  /// `horizon_block` (the paper's §7 vacuum extension). Destroys provenance
  /// for pruned history; returns the number of versions removed.
  size_t Vacuum(BlockNum horizon_block);

  using NotificationFn = std::function<void(const TxnNotification&)>;
  using SubscriptionId = uint64_t;

  /// Register a decision listener. The returned id unsubscribes it —
  /// sessions come and go, unlike the node-lifetime clients of the old
  /// API. Unsubscribe synchronizes with delivery: after it returns, the
  /// callback is not running and never will again. Callbacks must be quick
  /// and must not call Subscribe/Unsubscribe.
  SubscriptionId Subscribe(NotificationFn fn);
  void Unsubscribe(SubscriptionId id);

  /// Number of blocks whose write-set hash matched this node's for the
  /// given block (checkpoint agreement).
  size_t CheckpointMatches(BlockNum block) const {
    return checkpoints_.MatchCount(block);
  }

  /// Arm/clear this node's misbehavior policy at runtime (chaos events).
  /// Takes effect on the next committed block / query — no restart.
  void SetByzantinePolicy(const ByzantinePolicy& policy) {
    byz_mask_.store(policy.ToMask());
  }
  ByzantinePolicy byzantine_policy() const {
    return ByzantinePolicy::FromMask(byz_mask_.load());
  }

 private:
  void OnNetMessage(const NetMessage& m);
  void EnqueueBlock(Block block);

  /// Startup recovery: restore the newest durable checkpoint whose block
  /// hash matches the local block store. Returns the restored height (the
  /// pipeline then replays only blocks height+1..tip) or 0 for a genesis
  /// replay. On any failure the database is reset to pristine (system
  /// tables + bootstrap certificates) and an older checkpoint is tried.
  BlockNum TryRestoreFromCheckpoint();

  /// Re-apply deployed smart contracts from the restored pgdeploy table
  /// (in deploy_id order) — with a checkpoint restore the blocks that
  /// carried the deployments are not replayed, so the in-memory registry
  /// must be rebuilt from the table.
  void RebuildContractsFromDeployments();

  /// After block `number` commits: if it falls on the state-checkpoint
  /// interval, pin the catalog on this (commit) thread and hand the heavy
  /// serialization + atomic file write to the executor pool. At most one
  /// capture runs at a time; an interval landing while one is in flight is
  /// skipped (the next interval covers it).
  void MaybeWriteStateCheckpoint(const Block& block,
                                 const std::string& write_set_root);

  /// Move the in-sequence prefix of pending_blocks_ into the durable
  /// store. A failed append keeps the block pending (counted in metrics)
  /// and is retried on the next enqueue or fetch poll. Requires blocks_mu_.
  void DrainPendingLocked();

  // ---- BlockPipeline stage hooks (core/block_pipeline.h) ----

  /// Fetch block `n` from the store, triggering the §3.6 gap/catch-up
  /// retransmission logic when it is missing. Blocks at most ~2ms.
  bool FetchBlock(BlockNum n, Block* out);

  /// Stages 1+2: batch signature verification, execution start (claiming
  /// already-executing EOP entries), pgledger row writes. Runs on the
  /// pipeline's prepare thread, in block order. In order-then-execute
  /// mode stage 2 waits for block n-1's commit first — OTE snapshots are
  /// "the state committed by the previous block", so only stage 1 can
  /// overlap; EOP snapshots are block-height-pinned by the client and
  /// stage 2 overlaps fully.
  void PrepareBlock(BlockWork* work);

  /// Stage 3: execution barrier, serial block-order commit, registry ops,
  /// checkpointing, pgledger status updates, committed-height publication
  /// and decision notifications. The height is advanced *before* the
  /// notifications so a client reacting to its commit never submits
  /// against the pre-block snapshot height.
  void CommitBlock(BlockWork* work);

  /// Authenticate a transaction: registry first, then the pgcerts table
  /// (covering users added on-chain via create_user). With
  /// `skip_signature` the crypto is skipped (the verifier cache already
  /// vouched for this txid) and only the principal's role is resolved.
  /// With `allow_pgcerts_fallback` false, only the immutable bootstrap
  /// registry is consulted — the pipeline's prepare stage uses this so a
  /// block's authentication never reads pgcerts state an in-flight
  /// earlier block may still change.
  Status Authenticate(const Transaction& tx, PrincipalRole* role_out,
                      bool skip_signature = false,
                      bool allow_pgcerts_fallback = true);

  /// The pgcerts insert behind SeedCertificate (also used to re-seed a
  /// pristine database after an abandoned checkpoint restore).
  Status SeedCertificateRow(const Identity& identity);

  /// True if this txid is already recorded in pgledger or executing.
  bool IsDuplicate(const std::string& txid);

  /// Query-path user check: bootstrap registry first, then pgcerts.
  Status CheckQueryUser(const std::string& user);

  /// True when every table a SELECT references is in the blockchain
  /// schema — the precondition for pinning a block-height snapshot.
  bool AllBlockchainTables(const sql::SelectStmt& select);

  /// Start concurrent execution of a transaction; returns the entry.
  /// `started_by_block` is the block whose prepare stage requested it
  /// (0 = client submission / peer forward). Block-started entries whose
  /// authentication cannot be decided yet (pgcerts may change until
  /// block-1 commits) defer it to the executor task; a txid already
  /// claimed by an earlier in-flight block yields a fresh duplicate-abort
  /// entry.
  std::shared_ptr<ExecEntry> StartExecution(const Transaction& tx,
                                            bool eop_mode,
                                            BlockNum started_by_block = 0);

  /// Deterministic executor-group routing: the partition of the
  /// transaction's first argument (point transactions land on the group
  /// that owns their row) or a hash of the txid when there are no
  /// arguments. Routing only picks threads and the TxnId allocation
  /// sequence — never a commit decision.
  uint32_t RouteToPartition(const Transaction& tx) const;
  ThreadPool* ExecutorGroup(uint32_t partition) {
    return partition == 0 ? executors_.get()
                          : extra_executors_[partition - 1].get();
  }

  void WriteLedgerRows(const Block& block,
                       const std::vector<std::shared_ptr<ExecEntry>>& entries);
  void UpdateLedgerStatuses(
      const Block& block,
      const std::vector<std::shared_ptr<ExecEntry>>& entries);

  void Notify(const std::string& txid, const Status& status, BlockNum block);

  sql::ExecOptions FlowOptions() const;

  NodeConfig config_;
  Identity identity_;
  std::shared_ptr<CertificateRegistry> registry_;
  SimNetwork* net_;
  OrderingService* ordering_;
  std::string endpoint_;

  Database db_;
  sql::SqlEngine engine_;
  ContractRegistry contracts_;
  std::unique_ptr<BlockStore> block_store_;
  std::unique_ptr<CheckpointWriter> checkpoint_writer_;  // null = disabled
  /// Columnar ledger history (null = analytics disabled). The store is
  /// rebuilt from the row store's arenas on every Start() so a restart
  /// (crash recovery, checkpoint restore) never double-feeds events.
  std::unique_ptr<ColumnStore> column_store_;
  std::unique_ptr<HistoryBuilder> history_;
  HistoryBuilder::Options history_opts_;  ///< resolved at construction
  std::atomic<bool> capture_inflight_{false};
  /// Identities seeded before Start (SeedCertificate); replayed into a
  /// pristine database when a checkpoint restore has to be abandoned.
  std::vector<Identity> seeded_identities_;
  CheckpointManager checkpoints_;
  NodeMetrics metrics_;
  std::unique_ptr<ThreadPool> executors_;
  /// Executor pools for partition groups 1..P-1 (group 0 shares
  /// executors_, which also serves signature verification and checkpoint
  /// capture). Routing is a pure function of the transaction (see
  /// RouteToPartition) and is performance-only: it never affects commit
  /// decisions.
  std::vector<std::unique_ptr<ThreadPool>> extra_executors_;
  std::unique_ptr<SignatureVerifier> verifier_;

  std::vector<std::string> peer_endpoints_;

  // Block intake: blocks may arrive out of order; the pipeline's prepare
  // stage consumes them strictly sequentially.
  mutable std::mutex blocks_mu_;
  std::condition_variable blocks_cv_;
  std::map<BlockNum, Block> pending_blocks_;
  BlockNum committed_height_ = 0;  ///< serial commit finished (stage 3)
  BlockNum executed_height_ = 0;   ///< prepare stage finished (stages 1+2)
  std::condition_variable height_cv_;
  uint64_t idle_polls_ = 0;  ///< prepare-thread only (catch-up cadence)
  uint64_t fetch_fail_streak_ = 0;  ///< prepare-thread only (log rate cap)

  // Append-retry backoff (DrainPendingLocked; guarded by blocks_mu_).
  uint64_t append_fail_streak_ = 0;
  std::chrono::steady_clock::time_point next_append_retry_{};
  std::minstd_rand backoff_rng_;  ///< jitter; seeded from the node name

  // Active executions by global txid.
  std::mutex exec_mu_;
  std::condition_variable exec_cv_;
  std::map<std::string, std::shared_ptr<ExecEntry>> active_;

  std::mutex subs_mu_;
  SubscriptionId next_sub_id_ = 1;
  std::map<SubscriptionId, NotificationFn> subscribers_;

  std::atomic<bool> running_{false};
  /// Armed ByzantinePolicy bitmask; read lock-free on the commit path.
  std::atomic<uint32_t> byz_mask_{0};
  size_t pipeline_depth_ = 1;  ///< resolved from config/env at construction
  size_t partitions_ = 1;      ///< resolved + normalized at construction
  bool analytics_enabled_ = false;  ///< resolved from config/env
  std::unique_ptr<BlockPipeline> pipeline_;
};

}  // namespace brdb

#endif  // BRDB_CORE_NODE_H_
