// Session: the asynchronous application endpoint (paper §3.1, §5). A
// session signs contract invocations, submits them through a Transport and
// learns commit/abort from the nodes' notification channels — without ever
// blocking between submissions, so one session pipelines hundreds of
// in-flight transactions:
//
//   Session s(identity, transport);
//   std::vector<TxnHandle> handles;
//   for (...) handles.push_back(s.Submit("transfer", {...}));  // no waits
//   for (auto& h : handles) h.Wait();                          // then wait
//
// Submit() returns a TxnHandle — a future over the network's decision with
// per-node statuses, a majority-commit Wait(), and the commit block.
// SubmitBatch() amortizes signing and framing over many invocations.
// Prepare() parses/validates a statement once (server-side plan cache) and
// returns a PreparedStatement that is bound per execution with parameters.
#ifndef BRDB_CORE_SESSION_H_
#define BRDB_CORE_SESSION_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/transport.h"

namespace brdb {

namespace detail {

/// Shared decision state for one transaction id. Handles are value types
/// over this record; the owning session routes node decisions into it.
struct TxnRecord {
  std::string txid;
  size_t peer_count = 0;
  Micros default_timeout_us = 10000000;

  mutable std::mutex mu;
  std::condition_variable cv;
  std::map<std::string, Status> decisions;  ///< node name -> decided status
  BlockNum decided_block = 0;
  bool retention_queued = false;  ///< already enqueued for retention drop
};

}  // namespace detail

/// Future-like handle for a submitted (or tracked) transaction. Copyable;
/// all copies observe the same decision state.
class TxnHandle {
 public:
  TxnHandle() = default;

  bool valid() const { return rec_ != nullptr; }
  const std::string& txid() const;

  /// Status of the submission itself (signing/transport/duplicate-id
  /// errors). A failed submission never gets decisions, so Wait() returns
  /// this immediately.
  const Status& submit_status() const { return submit_status_; }

  /// True once a majority of nodes decided (committed or aborted).
  bool Decided() const;

  /// Block until a majority of nodes committed (OK) or decided an abort
  /// (that abort status). Deadline-based: spurious wakeups re-wait until
  /// the full deadline; a timeout returns kUnavailable carrying the elapsed
  /// time, and the caller may resubmit (§3.5(2)). `timeout_us` 0 = the
  /// session default.
  Status Wait(Micros timeout_us = 0);

  /// Block until every node decided; OK only when all committed. Used
  /// between dependent steps so the next snapshot covers this commit on
  /// whichever node it lands.
  Status WaitAllNodes(Micros timeout_us = 0);

  /// Highest block any node reported as the commit block (0 = undecided).
  BlockNum CommitBlock() const;

  /// Per-node decided statuses so far.
  std::map<std::string, Status> NodeStatuses() const;

 private:
  friend class Session;
  TxnHandle(std::shared_ptr<detail::TxnRecord> rec, Status submit_status)
      : rec_(std::move(rec)), submit_status_(std::move(submit_status)) {}

  std::shared_ptr<detail::TxnRecord> rec_;
  Status submit_status_;
};

/// A server-validated statement handle: parsed once (the node's plan cache
/// keeps the AST), bound per execution with positional parameters that are
/// arity- and type-checked client-side before any frame is sent.
class PreparedStatement {
 public:
  PreparedStatement() = default;

  bool valid() const { return !sql_.empty(); }
  const std::string& sql() const { return sql_; }
  int param_count() const { return info_.param_count; }
  sql::StatementType type() const { return info_.type; }
  const std::vector<ValueType>& param_types() const {
    return info_.param_types;
  }

  /// Validate an execution's parameters against the statement: exact
  /// arity, and type agreement where the server inferred a type.
  Status BindCheck(const std::vector<Value>& params) const;

 private:
  friend class Session;
  std::string sql_;
  sql::PreparedInfo info_;
};

/// One named contract invocation in a batch submission.
struct Invocation {
  std::string contract;
  std::vector<Value> args;
};

struct SessionOptions {
  /// Default deadline for TxnHandle::Wait / WaitAllNodes.
  Micros default_timeout_us = 10000000;

  /// Decision-record retention: once a transaction has a majority decision
  /// and the session observes a decision from a block at least this many
  /// blocks later, the transaction's record is dropped from the session's
  /// map. Handles already issued stay valid — they share ownership of the
  /// record and keep receiving straggler decisions — and a later Track()
  /// of the txid resurrects the co-owned record while any handle lives
  /// (starting fresh only after the last handle is gone). 0, the default,
  /// keeps every record for the session's lifetime (the historical
  /// unbounded behavior).
  uint64_t retain_decided_blocks = 0;
};

class Session {
 public:
  Session(Identity identity, std::shared_ptr<Transport> transport,
          SessionOptions options = SessionOptions());
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const Identity& identity() const { return identity_; }
  const std::string& name() const { return identity_.name; }
  Transport* transport() { return transport_.get(); }

  /// Sign and submit one contract invocation; returns immediately with a
  /// TxnHandle. Callers pipeline by submitting many before waiting on any.
  TxnHandle Submit(const std::string& contract, std::vector<Value> args);

  /// Submit many invocations in one transport frame: signing, the EOP
  /// height probe and framing are amortized over the batch. Handles come
  /// back in input order.
  std::vector<TxnHandle> SubmitBatch(std::vector<Invocation> invocations);

  /// Build (and sign) a transaction without submitting — for tests that
  /// exercise malicious paths. In EOP mode this needs a height probe, so a
  /// full outage surfaces here instead of producing a stale-snapshot
  /// transaction.
  Result<Transaction> MakeTransaction(const std::string& contract,
                                      std::vector<Value> args);

  /// Handle for a transaction this session did not submit (e.g. one pushed
  /// straight to ordering); its decisions are tracked the same way.
  TxnHandle Track(const std::string& txid);

  /// Parse/validate `sql` on a peer and return a bindable handle.
  Result<PreparedStatement> Prepare(const std::string& sql);

  /// Read-only query on a transport-selected healthy peer (round-robin
  /// with failover).
  Result<sql::ResultSet> Query(const std::string& sql,
                               const std::vector<Value>& params = {});
  Result<sql::ResultSet> Query(const PreparedStatement& stmt,
                               const std::vector<Value>& params = {});
  Result<sql::ResultSet> ProvenanceQuery(const std::string& sql,
                                         const std::vector<Value>& params = {});
  Result<sql::ResultSet> ProvenanceQuery(const PreparedStatement& stmt,
                                         const std::vector<Value>& params = {});

  /// Query pinned to one peer (deployment governance reads, tests).
  Result<sql::ResultSet> QueryOn(size_t peer, const std::string& sql,
                                 const std::vector<Value>& params = {});

  /// Decision records currently held (observability; bounded when
  /// SessionOptions::retain_decided_blocks is set).
  size_t tracked_records() const;

 private:
  std::shared_ptr<detail::TxnRecord> RecordFor(const std::string& txid);
  /// Find-or-create under an already-held mu_; resurrects a retained-out
  /// record when a live handle still co-owns it. `created` (optional)
  /// reports whether a brand-new record was made.
  std::shared_ptr<detail::TxnRecord> RecordForLocked(const std::string& txid,
                                                     bool* created = nullptr);
  void OnDecision(const std::string& peer, const TxnNotification& n);

  /// Drop records whose decision is `retain_decided_blocks` blocks behind
  /// the highest block this session has observed. Caller holds mu_.
  void PruneDecidedLocked();

  Identity identity_;
  std::shared_ptr<Transport> transport_;
  SessionOptions options_;
  uint64_t subscription_ = 0;
  std::atomic<uint64_t> counter_{0};

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<detail::TxnRecord>> records_;
  /// Retention bookkeeping: decided transactions in decision-block order,
  /// and the highest block observed in any notification.
  std::multimap<BlockNum, std::string> decided_at_;
  BlockNum latest_block_ = 0;
  /// Records CREATED by an incoming notification (not by Submit/Track),
  /// keyed by observation block. Normally such a record reaches majority
  /// and is retained out via decided_at_; one created by a straggler whose
  /// txid aged out of the pruned-memory FIFO never can (its peers' votes
  /// were dropped), so after a generous grace window any still-minority
  /// entry here is retained out too — without this sweep each such orphan
  /// would survive for the session's lifetime.
  std::multimap<BlockNum, std::string> observed_at_;
  /// Recently pruned txids (bounded FIFO memory) with a weak reference to
  /// the record they held. A straggler node's late decision for a pruned
  /// transaction must NOT re-create a record in `records_` — a resurrected
  /// minority record could never reach majority again and would leak for
  /// the session's lifetime — but while an issued handle still co-owns the
  /// record, the decision is delivered to it so WaitAllNodes()/
  /// NodeStatuses() stay complete. Explicit Track()/Submit() re-arms full
  /// tracking (and re-queues the record for its next retention drop).
  static constexpr size_t kPrunedMemory = 4096;
  std::unordered_map<std::string, std::weak_ptr<detail::TxnRecord>> pruned_;
  std::deque<std::string> pruned_fifo_;
};

}  // namespace brdb

#endif  // BRDB_CORE_SESSION_H_
