#include "core/blockchain_network.h"

#include <algorithm>

#include "common/logging.h"

namespace brdb {

std::unique_ptr<BlockchainNetwork> BlockchainNetwork::Create(
    const NetworkOptions& options) {
  auto net = std::unique_ptr<BlockchainNetwork>(new BlockchainNetwork());
  net->options_ = options;
  net->registry_ = std::make_shared<CertificateRegistry>();
  net->net_ = std::make_unique<SimNetwork>(options.profile);
  if (options.chaos != nullptr) {
    net->net_->SetFaultInjector(options.chaos);
  }

  // Identities: per organization one admin and one peer; orderers are
  // spread round-robin over the organizations.
  std::vector<Identity> admin_ids, peer_ids, orderer_ids;
  for (const std::string& org : options.orgs) {
    admin_ids.push_back(
        Identity::Create(org, "admin-" + org, PrincipalRole::kAdmin));
    peer_ids.push_back(
        Identity::Create(org, "peer-" + org, PrincipalRole::kPeer));
  }
  size_t n_orderers =
      options.num_orderers == 0 ? options.orgs.size() : options.num_orderers;
  for (size_t i = 0; i < n_orderers; ++i) {
    const std::string& org = options.orgs[i % options.orgs.size()];
    orderer_ids.push_back(Identity::Create(
        org, "orderer-" + std::to_string(i + 1), PrincipalRole::kOrderer));
  }
  auto register_identity = [&](const Identity& id) {
    net->registry_->Register(id.name, id.organization, id.role,
                             id.keys.public_key);
  };
  for (const auto& id : admin_ids) register_identity(id);
  for (const auto& id : peer_ids) register_identity(id);
  for (const auto& id : orderer_ids) register_identity(id);

  // Ordering service.
  switch (options.orderer_type) {
    case OrdererType::kSolo:
      net->ordering_ = std::make_unique<SoloOrderer>(
          options.orderer_config, net->net_.get(), orderer_ids[0]);
      break;
    case OrdererType::kKafka:
      net->ordering_ = std::make_unique<KafkaOrderingService>(
          options.orderer_config, net->net_.get(), orderer_ids);
      break;
    case OrdererType::kRaft:
      net->ordering_ = std::make_unique<RaftOrderingService>(
          options.orderer_config, net->net_.get(), orderer_ids);
      break;
    case OrdererType::kPbft:
      net->ordering_ = std::make_unique<PbftOrderingService>(
          options.orderer_config, net->net_.get(), orderer_ids);
      break;
  }

  // Database nodes, one per organization.
  for (size_t i = 0; i < options.orgs.size(); ++i) {
    NodeConfig cfg;
    cfg.name = "peer-" + options.orgs[i];
    cfg.org = options.orgs[i];
    cfg.flow = options.flow;
    cfg.executor_threads = options.executor_threads;
    cfg.txn_lock_stripes = options.txn_lock_stripes;
    cfg.partitions = options.partitions;
    cfg.pipeline_depth = options.pipeline_depth;
    cfg.index_backend = options.index_backend;
    cfg.sig_cache_capacity = options.sig_cache_capacity;
    cfg.checkpoint_interval = options.checkpoint_interval;
    cfg.serial_execution = options.serial_execution;
    if (!options.block_store_dir.empty()) {
      cfg.block_store_path =
          options.block_store_dir + "/" + cfg.name + ".blocks";
    }
    cfg.fsync_policy = options.fsync_policy;
    cfg.block_store_segment_bytes = options.block_store_segment_bytes;
    cfg.fsync_batch_blocks = options.fsync_batch_blocks;
    cfg.state_checkpoint_interval = options.state_checkpoint_interval;
    cfg.analytics_columnar = options.analytics_columnar;
    cfg.analytics_segment_blocks = options.analytics_segment_blocks;
    if (options.fault_injector != nullptr &&
        options.fault_injector_node == cfg.name) {
      cfg.fault_injector = options.fault_injector;
    }
    cfg.byzantine_skip_commit =
        std::find(options.byzantine_nodes.begin(),
                  options.byzantine_nodes.end(),
                  i) != options.byzantine_nodes.end();
    auto byz = options.byzantine_policies.find(i);
    if (byz != options.byzantine_policies.end()) {
      cfg.byzantine = byz->second;
    }
    cfg.chaos = options.chaos;
    auto node = std::make_unique<DatabaseNode>(cfg, peer_ids[i],
                                               net->registry_,
                                               net->net_.get(),
                                               net->ordering_.get());
    net->nodes_.push_back(std::move(node));
  }

  // Peer endpoint wiring (EOP forwarding) and block delivery.
  std::vector<std::string> endpoints;
  for (const auto& node : net->nodes_) endpoints.push_back(node->endpoint());
  for (size_t i = 0; i < net->nodes_.size(); ++i) {
    std::vector<std::string> others;
    for (size_t j = 0; j < endpoints.size(); ++j) {
      if (j != i) others.push_back(endpoints[j]);
    }
    net->nodes_[i]->SetPeerEndpoints(std::move(others));
    net->ordering_->ConnectPeer(endpoints[i]);
  }

  // §3.7 bootstrap: every node records every identity in its pgcerts.
  for (const auto& node : net->nodes_) {
    for (const auto& id : admin_ids) (void)node->SeedCertificate(id);
    for (const auto& id : peer_ids) (void)node->SeedCertificate(id);
    for (const auto& id : orderer_ids) (void)node->SeedCertificate(id);
  }

  // One shared transport for every client and session on this network.
  std::vector<DatabaseNode*> node_ptrs;
  for (const auto& node : net->nodes_) node_ptrs.push_back(node.get());
  net->transport_ = std::make_shared<InProcessTransport>(
      net->ordering_.get(), node_ptrs);

  // Admin clients.
  for (const auto& admin : admin_ids) {
    auto client = std::make_unique<Client>(admin, net->transport_);
    net->admins_[admin.organization] = client.get();
    net->clients_.push_back(std::move(client));
  }
  return net;
}

BlockchainNetwork::~BlockchainNetwork() { Stop(); }

Status BlockchainNetwork::Start() {
  if (started_) return Status::OK();
  started_ = true;
  // Whole-network restart over durable ledgers: the orderer's in-memory
  // chain is empty, so adopt the longest peer chain before it assembles
  // anything — otherwise its "block 1" would be dropped as a duplicate by
  // every peer that already holds one.
  DatabaseNode* longest = nullptr;
  for (auto& node : nodes_) {
    if (node->block_store()->Height() == 0) continue;
    if (longest == nullptr ||
        node->block_store()->Height() > longest->block_store()->Height()) {
      longest = node.get();
    }
  }
  if (longest != nullptr) {
    Status seeded = ordering_->SeedChain(*longest->block_store());
    if (!seeded.ok()) {
      BRDB_LOG(kError, "network")
          << "orderer chain seeding failed: " << seeded.ToString();
    }
  }
  ordering_->Start();
  for (auto& node : nodes_) BRDB_RETURN_NOT_OK(node->Start());
  return Status::OK();
}

void BlockchainNetwork::Stop() {
  if (!started_) return;
  started_ = false;
  for (auto& node : nodes_) node->Stop();
  ordering_->Stop();
}

Client* BlockchainNetwork::CreateClient(const std::string& org,
                                        const std::string& name) {
  Identity id = Identity::Create(org, name, PrincipalRole::kClient);
  registry_->Register(id.name, id.organization, id.role, id.keys.public_key);
  auto client = std::make_unique<Client>(id, transport_);
  Client* ptr = client.get();
  clients_.push_back(std::move(client));
  return ptr;
}

Session* BlockchainNetwork::CreateSession(const std::string& org,
                                          const std::string& name,
                                          SessionOptions options) {
  Identity id = Identity::Create(org, name, PrincipalRole::kClient);
  registry_->Register(id.name, id.organization, id.role, id.keys.public_key);
  auto session = std::make_unique<Session>(id, transport_, options);
  Session* ptr = session.get();
  sessions_.push_back(std::move(session));
  return ptr;
}

Client* BlockchainNetwork::AdminOf(const std::string& org) {
  auto it = admins_.find(org);
  return it == admins_.end() ? nullptr : it->second;
}

Status BlockchainNetwork::DeployContract(const std::string& deployment_sql) {
  Client* proposer = AdminOf(options_.orgs[0]);
  if (proposer == nullptr) return Status::Internal("no admin client");

  // Each step waits for a majority commit (byzantine-minority tolerant),
  // then ensures every reachable node processed that block so the next
  // step's snapshot height covers it on whichever node it lands.
  auto settle = [&](Client* c, const std::string& txid) -> Status {
    BRDB_RETURN_NOT_OK(c->WaitForCommit(txid));
    BlockNum h = c->DecidedBlockOf(txid);
    if (h > 0) (void)WaitForHeight(h, 5000000);
    return Status::OK();
  };

  auto create = proposer->Invoke("create_deployTx",
                                 {Value::Text(deployment_sql)});
  if (!create.ok()) return create.status();
  BRDB_RETURN_NOT_OK(settle(proposer, create.value()));

  // Pinned read: governance must not depend on a round-robin pick landing
  // on a well-behaved peer (a byzantine node may have skipped the commit).
  auto id_r =
      proposer->session()->QueryOn(0, "SELECT MAX(deploy_id) FROM pgdeploy");
  if (!id_r.ok()) return id_r.status();
  auto scalar = id_r.value().Scalar();
  if (!scalar.ok()) return scalar.status();
  Value deploy_id = scalar.value();

  for (size_t i = 1; i < options_.orgs.size(); ++i) {
    Client* approver = AdminOf(options_.orgs[i]);
    auto approve = approver->Invoke("approve_deployTx", {deploy_id});
    if (!approve.ok()) return approve.status();
    BRDB_RETURN_NOT_OK(settle(approver, approve.value()));
  }

  auto submit = proposer->Invoke("submit_deployTx", {deploy_id});
  if (!submit.ok()) return submit.status();
  return settle(proposer, submit.value());
}

Status BlockchainNetwork::RegisterNativeContract(const std::string& name,
                                                 NativeContractFn fn) {
  for (auto& node : nodes_) {
    BRDB_RETURN_NOT_OK(node->contracts()->RegisterNative(name, fn));
  }
  return Status::OK();
}

Status BlockchainNetwork::WaitForHeight(BlockNum height, Micros timeout_us) {
  const auto& clock = RealClock::Shared();
  Micros deadline = clock->NowMicros() + timeout_us;
  for (;;) {
    bool all = true;
    for (auto& node : nodes_) {
      if (node->Height() < height) {
        all = false;
        break;
      }
    }
    if (all) return Status::OK();
    if (clock->NowMicros() > deadline) {
      return Status::Unavailable("timeout waiting for height " +
                                 std::to_string(height));
    }
    clock->SleepMicros(1000);
  }
}

void BlockchainNetwork::WaitIdle(Micros settle_us, Micros timeout_us) {
  const auto& clock = RealClock::Shared();
  Micros deadline = clock->NowMicros() + timeout_us;
  uint64_t last_total = 0;
  Micros stable_since = clock->NowMicros();
  for (;;) {
    uint64_t total = 0;
    for (auto& node : nodes_) {
      total += node->metrics()->txns_committed() +
               node->metrics()->txns_aborted();
    }
    Micros now = clock->NowMicros();
    if (total != last_total) {
      last_total = total;
      stable_since = now;
    } else if (now - stable_since >= settle_us) {
      return;
    }
    if (now > deadline) return;
    clock->SleepMicros(5000);
  }
}

}  // namespace brdb
