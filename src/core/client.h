// Client: a signing application endpoint (paper §3.1). Submits contract
// invocations — to the ordering service in order-then-execute, or to a
// database peer (which forwards) in execute-order-in-parallel — and listens
// on the nodes' notification channels. A transaction counts as committed in
// the network once a majority of nodes commit it (§5).
#ifndef BRDB_CORE_CLIENT_H_
#define BRDB_CORE_CLIENT_H_

#include <condition_variable>
#include <map>
#include <optional>

#include "core/node.h"

namespace brdb {

class Client {
 public:
  /// Subscribes to every node's notification channel.
  Client(Identity identity, OrderingService* ordering,
         std::vector<DatabaseNode*> nodes);

  const Identity& identity() const { return identity_; }
  const std::string& name() const { return identity_.name; }

  /// Invoke a smart contract. Picks the flow from the nodes' configuration:
  /// order-then-execute submits straight to ordering with a client-unique
  /// id; execute-order-in-parallel fetches the current block height from a
  /// peer (round-robin) and submits there. Returns the transaction id.
  Result<std::string> Invoke(const std::string& contract,
                             std::vector<Value> args);

  /// Build (and sign) the transaction without submitting — used by tests
  /// that exercise malicious paths.
  Transaction MakeTransaction(const std::string& contract,
                              std::vector<Value> args);

  /// Block until a majority of nodes committed (OK) or decided an abort
  /// (the abort status). Times out with kUnavailable — the caller may
  /// resubmit (§3.5(2)).
  Status WaitForCommit(const std::string& txid, Micros timeout_us = 10000000);

  /// Block until every node has decided the transaction. Returns OK only
  /// when all nodes committed. Used between dependent steps (e.g. the
  /// deployment governance flow) so the next transaction's snapshot height
  /// covers this one on whichever node it lands.
  Status WaitForDecisionOnAllNodes(const std::string& txid,
                                   Micros timeout_us = 10000000);

  /// Per-node decided statuses so far for a transaction.
  std::map<std::string, Status> StatusesOf(const std::string& txid);

  /// Highest block any node reported as this transaction's commit block
  /// (0 when undecided everywhere).
  BlockNum DecidedBlockOf(const std::string& txid);

  /// Read-only query against one node.
  Result<sql::ResultSet> Query(const std::string& sql,
                               const std::vector<Value>& params = {},
                               size_t node_index = 0);
  Result<sql::ResultSet> ProvenanceQuery(const std::string& sql,
                                         const std::vector<Value>& params = {},
                                         size_t node_index = 0);

 private:
  void OnNotification(const std::string& node, const TxnNotification& n);

  Identity identity_;
  OrderingService* ordering_;
  std::vector<DatabaseNode*> nodes_;
  std::atomic<uint64_t> counter_{0};
  std::atomic<uint64_t> rr_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  // txid -> node name -> decided status
  std::map<std::string, std::map<std::string, Status>> decisions_;
  std::map<std::string, BlockNum> decided_block_;
};

}  // namespace brdb

#endif  // BRDB_CORE_CLIENT_H_
