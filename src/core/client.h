// Client: DEPRECATED blocking shim over the Session API (core/session.h).
// Kept so existing call sites and tests keep compiling; new code should use
// Session directly — it pipelines submissions (TxnHandle futures), batches
// signing, and supports prepared statements. The shim simply wraps a
// Session over an in-process Transport and re-exposes the old
// one-call-per-step surface.
#ifndef BRDB_CORE_CLIENT_H_
#define BRDB_CORE_CLIENT_H_

#include <map>

#include "core/session.h"

namespace brdb {

class Client {
 public:
  /// Legacy constructor: builds a private in-process transport over the
  /// given node/ordering pointers.
  Client(Identity identity, OrderingService* ordering,
         std::vector<DatabaseNode*> nodes);

  /// Preferred: share one transport between many clients/sessions.
  Client(Identity identity, std::shared_ptr<Transport> transport);

  const Identity& identity() const { return session_.identity(); }
  const std::string& name() const { return session_.name(); }

  /// The underlying session (for incremental migration to the async API).
  Session* session() { return &session_; }

  /// Invoke a smart contract; returns the transaction id. Blocking waits
  /// happen later via WaitForCommit — submission itself is pipelined.
  Result<std::string> Invoke(const std::string& contract,
                             std::vector<Value> args);

  /// Build (and sign) the transaction without submitting — used by tests
  /// that exercise malicious paths.
  Transaction MakeTransaction(const std::string& contract,
                              std::vector<Value> args);

  /// Block until a majority of nodes committed (OK) or decided an abort
  /// (the abort status). Times out with kUnavailable (elapsed time in the
  /// message) — the caller may resubmit (§3.5(2)).
  Status WaitForCommit(const std::string& txid, Micros timeout_us = 10000000);

  /// Block until every node has decided the transaction. Returns OK only
  /// when all nodes committed.
  Status WaitForDecisionOnAllNodes(const std::string& txid,
                                   Micros timeout_us = 10000000);

  /// Per-node decided statuses so far for a transaction.
  std::map<std::string, Status> StatusesOf(const std::string& txid);

  /// Highest block any node reported as this transaction's commit block
  /// (0 when undecided everywhere).
  BlockNum DecidedBlockOf(const std::string& txid);

  /// Read-only query. Peer selection (round-robin over healthy peers with
  /// failover) happens behind the transport; use session()->QueryOn() to
  /// pin a peer.
  Result<sql::ResultSet> Query(const std::string& sql,
                               const std::vector<Value>& params = {});
  Result<sql::ResultSet> ProvenanceQuery(const std::string& sql,
                                         const std::vector<Value>& params = {});

 private:
  Session session_;
};

}  // namespace brdb

#endif  // BRDB_CORE_CLIENT_H_
