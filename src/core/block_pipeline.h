// BlockPipeline: staged block processing with a bounded in-flight window.
//
// The paper's ordered-commit design serializes only the *commit* phase per
// block; verification and execution of later blocks may proceed as soon as
// their snapshots are decided (§3.3/§3.4). The seed's BlockProcessorLoop
// ran verify -> execute -> commit -> notify strictly one block at a time,
// so the executor pool and the batch signature verifier idled during every
// serial commit. This subsystem splits the loop into explicit stages:
//
//   stage 1  batch signature verification (SignatureVerifier)
//   stage 2  execution start + pgledger row writes + (implicit) wait for
//            execution completion
//   stage 3  serial block-order commit + registry ops + checkpointing +
//            decision notifications
//
// Stages 1+2 run on a dedicated prepare thread, stage 3 on a dedicated
// commit thread; at most `depth` blocks are in flight (prepared or
// committing) at once. depth = 1 reproduces the legacy serial loop
// exactly: block N+1's prepare is only admitted once block N committed.
// With depth >= 2, block N+1's signature verification and execution
// overlap block N's serial commit while stage 3 — and therefore every
// commit/abort decision and every notification — remains strictly
// block-ordered. Determinism across depths rests on the block-aware SSI
// rules (txn/txn_manager.h): a conflict with an earlier block manifests
// either as a recorded rw edge to a committed transaction (overlapped
// execution) or as a stale/phantom read (serial execution) — both abort.
#ifndef BRDB_CORE_BLOCK_PIPELINE_H_
#define BRDB_CORE_BLOCK_PIPELINE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "wire/block.h"

namespace brdb {

/// Per-transaction execution bookkeeping, owned by the pipeline's user
/// (DatabaseNode defines it in core/node.h); the pipeline only carries
/// the shared_ptrs between stages.
struct ExecEntry;

/// One block moving through the pipeline.
struct BlockWork {
  Block block;
  std::vector<std::shared_ptr<ExecEntry>> entries;
  Micros t0 = 0;          ///< prepare-stage start
  Micros verify_us = 0;   ///< stage-1 latency (batch signature verify)
  Micros prepare_us = 0;  ///< stage-2 latency (exec start + ledger rows)
  bool aborted = false;   ///< prepare interrupted by shutdown; skip commit
};

class BlockPipeline {
 public:
  struct Hooks {
    /// Fetch block `n`, blocking briefly at most (poll / gap-fetch logic
    /// lives in the owner). False = nothing ready yet (or stopping); the
    /// prepare loop simply calls again.
    std::function<bool(BlockNum n, Block* out)> fetch;
    /// Stages 1+2. Runs on the prepare thread, one block at a time, in
    /// block order. Must not block on stage 3 of any block >= this one.
    std::function<void(BlockWork*)> prepare;
    /// Stage 3. Runs on the commit thread, strictly in block order; the
    /// owner publishes its committed height and delivers notifications
    /// inside this hook (so their order matches block order).
    std::function<void(BlockWork*)> commit;
  };

  /// `depth` = max blocks in flight (prepared or committing) at once;
  /// 1 reproduces the legacy serial loop, 0 is clamped to 1.
  BlockPipeline(size_t depth, Hooks hooks);
  ~BlockPipeline();

  /// Start both stage threads; `committed_height` seeds the window (the
  /// owner's recovery height).
  void Start(BlockNum committed_height);

  /// Stop both threads. Blocks already prepared are still committed (the
  /// commit thread drains its queue) so a restart never re-runs stage 2
  /// for a block whose pgledger rows were already written.
  void Stop();

  size_t depth() const { return depth_; }
  BlockNum prepared_height() const;
  BlockNum committed_height() const;
  /// Blocks currently in flight (prepared, not yet committed) — the
  /// pipeline occupancy gauge.
  size_t InFlight() const;

 private:
  void PrepareLoop();
  void CommitLoop();

  const size_t depth_;
  Hooks hooks_;
  std::atomic<bool> running_{false};
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<BlockWork>> ready_;  ///< prepared, uncommitted
  bool prepare_exited_ = false;  ///< commit drains only after prepare quits
  BlockNum prepared_height_ = 0;
  BlockNum committed_height_ = 0;
  std::thread prepare_thread_;
  std::thread commit_thread_;
};

}  // namespace brdb

#endif  // BRDB_CORE_BLOCK_PIPELINE_H_
