// Transport: the client layer's only window onto the network. A Session
// (core/session.h) never touches DatabaseNode or OrderingService pointers —
// every submission, query, prepare and height probe goes through this
// interface, and every message crosses it as a wire/codec frame. The
// in-process implementation therefore proves wire-readiness: swapping in a
// socket-backed transport changes where the frame bytes go, not what they
// are.
//
// Peer selection (round-robin over healthy peers, failover on unavailable
// ones) lives behind the transport too: callers ask for "a peer", not
// "peer 0", so read load spreads and a down node is skipped transparently.
#ifndef BRDB_CORE_TRANSPORT_H_
#define BRDB_CORE_TRANSPORT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/node.h"
#include "wire/codec.h"

namespace brdb {

/// Frame-level traffic counters. The pipelining test asserts these to prove
/// all client traffic round-trips through the codec even in-process.
struct TransportCounters {
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
};

/// Round-robin peer selection with failover: a peer reported failed is
/// skipped until a cooldown elapses (then probed again). Lock-free; safe to
/// call from any session thread.
class PeerSelector {
 public:
  explicit PeerSelector(size_t peers, Micros cooldown_us = 1000000);

  size_t peer_count() const { return peers_; }

  /// Next peer in round-robin order, skipping unhealthy peers. When every
  /// peer is marked failed, falls back to plain round-robin (someone has to
  /// take the probe that discovers recovery).
  size_t Next();

  void ReportFailure(size_t peer);
  void ReportSuccess(size_t peer);
  bool Healthy(size_t peer) const;

 private:
  size_t peers_;
  Micros cooldown_us_;
  std::atomic<uint64_t> rr_{0};
  std::unique_ptr<std::atomic<Micros>[]> failed_at_;  ///< 0 = healthy
};

/// A read-only (optionally provenance) query as it crosses the transport.
struct QueryRequest {
  std::string user;
  std::string sql;
  std::vector<Value> params;
  bool provenance = false;
};

/// Sentinel: let the transport's peer-selection policy pick.
inline constexpr size_t kAnyPeer = static_cast<size_t>(-1);

/// Server-side dispatch of one decoded request frame against a node's
/// surface: kSubmit, kQuery, kPrepare, kHeight, kFetchBlocks. Shared by
/// InProcessTransport (whose "server leg" is a function call) and the TCP
/// node server (network/cluster.h), so both answer byte-identically.
/// `flow` routes submits: execute-order-parallel to `node`, order-then-
/// execute to `ordering`. Either pointer may be null (answers Unavailable).
Frame DispatchRequestFrame(const Frame& request, DatabaseNode* node,
                           OrderingService* ordering, TransactionFlow flow);

class Transport {
 public:
  virtual ~Transport() = default;

  virtual size_t peer_count() const = 0;
  virtual std::string peer_name(size_t peer) const = 0;
  virtual TransactionFlow flow() const = 0;

  /// Submit a batch of signed transactions in one frame — to the ordering
  /// service (order-then-execute) or to a selected peer that forwards
  /// (execute-order-in-parallel). Returns one status per transaction, in
  /// input order; the outer status is transport-level (all peers down,
  /// malformed frame).
  virtual Result<std::vector<Status>> Submit(
      const std::vector<Transaction>& txs) = 0;

  /// Committed height of a selected healthy peer (the EOP snapshot basis).
  virtual Result<BlockNum> Height() = 0;

  /// Read-only query on a transport-selected healthy peer (round-robin with
  /// failover), or pinned to `pin_peer` when it is not kAnyPeer.
  virtual Result<sql::ResultSet> Query(const QueryRequest& req,
                                       size_t pin_peer = kAnyPeer) = 0;

  /// Parse/validate a statement on a peer; returns the binding metadata for
  /// a client-side PreparedStatement.
  virtual Result<sql::PreparedInfo> Prepare(const std::string& user,
                                            const std::string& sql) = 0;

  /// Decision events (commit/abort per node). The callback runs on network
  /// threads; it must be quick and must not call back into the transport.
  using DecisionFn =
      std::function<void(const std::string& peer, const TxnNotification& n)>;
  virtual uint64_t Subscribe(DecisionFn fn) = 0;
  virtual void Unsubscribe(uint64_t id) = 0;

  virtual const TransportCounters& counters() const = 0;
};

/// Transport over in-process node/ordering pointers. Every call encodes a
/// request frame, decodes it on the "server" side, dispatches, and encodes/
/// decodes the response frame — the exact byte path a socket transport
/// would use, minus the socket.
class InProcessTransport : public Transport {
 public:
  InProcessTransport(OrderingService* ordering,
                     std::vector<DatabaseNode*> nodes);
  ~InProcessTransport() override;

  InProcessTransport(const InProcessTransport&) = delete;
  InProcessTransport& operator=(const InProcessTransport&) = delete;

  size_t peer_count() const override { return nodes_.size(); }
  std::string peer_name(size_t peer) const override;
  TransactionFlow flow() const override;

  Result<std::vector<Status>> Submit(
      const std::vector<Transaction>& txs) override;
  Result<BlockNum> Height() override;
  Result<sql::ResultSet> Query(const QueryRequest& req,
                               size_t pin_peer = kAnyPeer) override;
  Result<sql::PreparedInfo> Prepare(const std::string& user,
                                    const std::string& sql) override;

  uint64_t Subscribe(DecisionFn fn) override;
  void Unsubscribe(uint64_t id) override;

  const TransportCounters& counters() const override { return counters_; }
  PeerSelector* selector() { return &selector_; }

 private:
  /// Encode `request`, decode it server-side, dispatch against `peer`,
  /// encode the response, decode it client-side. Counts frames and bytes in
  /// both directions.
  Result<Frame> RoundTrip(const Frame& request, size_t peer);

  /// Server-side handler: a decoded request frame in, a response frame out.
  Frame ServerDispatch(const Frame& request, size_t peer);

  void OnNodeDecision(size_t peer, const TxnNotification& n);

  OrderingService* ordering_;
  std::vector<DatabaseNode*> nodes_;
  PeerSelector selector_;
  TransportCounters counters_;
  std::atomic<uint64_t> next_seq_{1};

  std::vector<DatabaseNode::SubscriptionId> node_subs_;

  std::mutex subs_mu_;
  uint64_t next_sub_id_ = 1;
  std::map<uint64_t, DecisionFn> subscribers_;
};

}  // namespace brdb

#endif  // BRDB_CORE_TRANSPORT_H_
