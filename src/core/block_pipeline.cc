#include "core/block_pipeline.h"

namespace brdb {

BlockPipeline::BlockPipeline(size_t depth, Hooks hooks)
    : depth_(depth == 0 ? 1 : depth), hooks_(std::move(hooks)) {}

BlockPipeline::~BlockPipeline() { Stop(); }

void BlockPipeline::Start(BlockNum committed_height) {
  if (running_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    prepared_height_ = committed_height;
    committed_height_ = committed_height;
    prepare_exited_ = false;
    ready_.clear();
  }
  prepare_thread_ = std::thread([this] { PrepareLoop(); });
  commit_thread_ = std::thread([this] { CommitLoop(); });
}

void BlockPipeline::Stop() {
  if (!running_.exchange(false)) return;
  cv_.notify_all();
  if (prepare_thread_.joinable()) prepare_thread_.join();
  if (commit_thread_.joinable()) commit_thread_.join();
}

BlockNum BlockPipeline::prepared_height() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prepared_height_;
}

BlockNum BlockPipeline::committed_height() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_height_;
}

size_t BlockPipeline::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<size_t>(prepared_height_ - committed_height_);
}

void BlockPipeline::PrepareLoop() {
  while (running_.load()) {
    BlockNum next;
    {
      // Window admission: at most depth_ blocks prepared-but-uncommitted.
      // At depth 1 this strictly alternates prepare and commit — the
      // legacy serial loop split across two threads.
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return !running_.load() ||
               prepared_height_ - committed_height_ <
                   static_cast<BlockNum>(depth_);
      });
      if (!running_.load()) break;
      next = prepared_height_ + 1;
    }
    auto work = std::make_unique<BlockWork>();
    if (!hooks_.fetch(next, &work->block)) continue;
    hooks_.prepare(work.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      prepared_height_ = next;
      ready_.push_back(std::move(work));
    }
    cv_.notify_all();
  }
  std::lock_guard<std::mutex> lock(mu_);
  prepare_exited_ = true;
  cv_.notify_all();
}

void BlockPipeline::CommitLoop() {
  for (;;) {
    std::unique_ptr<BlockWork> work;
    {
      // Exit only once the prepare thread is done AND the queue drained:
      // a block whose prepare straddles Stop() is still pushed, and must
      // still commit — its stage-2 side effects (pgledger rows, claimed
      // executions) are already in place, and a restart must never re-run
      // stage 2 for it.
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return !ready_.empty() || (!running_.load() && prepare_exited_);
      });
      if (ready_.empty()) return;  // stopped and fully drained
      work = std::move(ready_.front());
      ready_.pop_front();
    }
    hooks_.commit(work.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      committed_height_ = work->block.number();
    }
    cv_.notify_all();
  }
}

}  // namespace brdb
