// BlockchainNetwork: the facade that bootstraps a permissioned network
// (paper §3.7) — identities and certificate exchange, the simulated
// network, a pluggable ordering service, one database node per
// organization, and clients. This is the entry point examples, benchmarks
// and integration tests use.
#ifndef BRDB_CORE_BLOCKCHAIN_NETWORK_H_
#define BRDB_CORE_BLOCKCHAIN_NETWORK_H_

#include <memory>

#include "consensus/kafka.h"
#include "consensus/pbft.h"
#include "consensus/raft.h"
#include "consensus/solo.h"
#include "core/client.h"
#include "core/node.h"
#include "core/session.h"
#include "core/transport.h"

namespace brdb {

enum class OrdererType { kSolo, kKafka, kRaft, kPbft };

struct NetworkOptions {
  std::vector<std::string> orgs = {"org1", "org2", "org3"};
  TransactionFlow flow = TransactionFlow::kOrderThenExecute;
  OrdererType orderer_type = OrdererType::kKafka;
  size_t num_orderers = 0;  ///< 0 = one per organization
  OrdererConfig orderer_config;
  NetworkProfile profile = NetworkProfile::Lan();
  size_t executor_threads = 8;

  /// Transaction-manager lock stripes per node (0 = default striping,
  /// 1 = single-mutex baseline for benchmarks).
  size_t txn_lock_stripes = 0;

  /// Partition executor groups per node (0 = default: $BRDB_PARTITIONS or
  /// 1). See NodeConfig::partitions.
  size_t partitions = 0;

  /// Block-pipeline depth per node: max blocks in flight, with block N+1's
  /// verify/execute overlapping block N's serial commit (0 = default,
  /// 1 = the exact legacy serial loop). See NodeConfig::pipeline_depth.
  size_t pipeline_depth = 0;

  /// Ordered-index implementation for every node's tables (kStdMap is the
  /// pre-B-tree baseline kept for parity/determinism tests).
  IndexBackend index_backend = IndexBackend::kBTree;

  /// Per-node signature-verifier cache capacity (0 = default; tests shrink
  /// it to exercise eviction + replay semantics).
  size_t sig_cache_capacity = 0;
  size_t checkpoint_interval = 1;
  std::string block_store_dir;  ///< "" = in-memory block stores
  bool serial_execution = false;

  /// Durability knobs for every node's block log (see NodeConfig).
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  size_t block_store_segment_bytes = 0;  ///< 0 = BlockStore default
  size_t fsync_batch_blocks = 0;         ///< 0 = BlockStore default

  /// Durable state checkpoint every N committed blocks per node
  /// (0 = disabled); restart restores the newest valid checkpoint and
  /// replays only the block suffix.
  size_t state_checkpoint_interval = 0;

  /// Test hook: block-store crash injection for the node with this name
  /// ("peer-<org>"); the injector must outlive the network.
  FaultInjector* fault_injector = nullptr;
  std::string fault_injector_node;

  /// Node indexes configured to misbehave (skip commits, §3.5(3)).
  /// Legacy shorthand for byzantine_policies with skip_commit.
  std::vector<size_t> byzantine_nodes;

  /// Initial misbehavior policy per node index (network/chaos.h). Merged
  /// with byzantine_nodes; runtime changes go through
  /// DatabaseNode::SetByzantinePolicy (e.g. from a ChaosRunner).
  std::map<size_t, ByzantinePolicy> byzantine_policies;

  /// Network chaos injector armed on the SimNetwork and every node
  /// (must outlive the network). See NetworkFaultInjector.
  NetworkFaultInjector* chaos = nullptr;

  /// Columnar ledger history + vectorized analytics per node (see
  /// NodeConfig::analytics_columnar; $BRDB_ANALYTICS overrides).
  bool analytics_columnar = true;
  size_t analytics_segment_blocks = 0;  ///< 0 = default (16 blocks)
};

class BlockchainNetwork {
 public:
  static std::unique_ptr<BlockchainNetwork> Create(
      const NetworkOptions& options);

  ~BlockchainNetwork();

  Status Start();
  void Stop();

  size_t num_nodes() const { return nodes_.size(); }
  DatabaseNode* node(size_t i) { return nodes_[i].get(); }
  OrderingService* ordering() { return ordering_.get(); }
  SimNetwork* network() { return net_.get(); }
  CertificateRegistry* registry() { return registry_.get(); }
  const NetworkOptions& options() const { return options_; }

  /// Create a client identity registered with every node (bootstrap-time
  /// registration; §3.7 — later users are onboarded on-chain via the
  /// create_user system contract).
  Client* CreateClient(const std::string& org, const std::string& name);

  /// Create an asynchronous session for a freshly registered identity —
  /// the preferred client API (core/session.h). All sessions and clients
  /// share this network's in-process transport.
  Session* CreateSession(const std::string& org, const std::string& name,
                         SessionOptions options = SessionOptions());

  /// The network-wide shared transport (frame counters live here).
  Transport* transport() { return transport_.get(); }

  /// The pre-created admin client of an organization.
  Client* AdminOf(const std::string& org);

  /// Deploy through the full governance flow: create_deployTx by one
  /// admin, approve_deployTx by every other organization's admin,
  /// submit_deployTx. Blocks until each step commits.
  Status DeployContract(const std::string& deployment_sql);

  /// Register a native contract identically on every node (used by
  /// benchmarks; deterministic because all nodes get the same function).
  Status RegisterNativeContract(const std::string& name, NativeContractFn fn);

  /// Wait until every node committed at least `height` blocks.
  Status WaitForHeight(BlockNum height, Micros timeout_us = 30000000);

  /// Wait until every node's committed transaction count stops changing
  /// (the network drained); used by benchmarks.
  void WaitIdle(Micros settle_us = 200000, Micros timeout_us = 60000000);

 private:
  BlockchainNetwork() = default;

  NetworkOptions options_;
  std::shared_ptr<CertificateRegistry> registry_;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<OrderingService> ordering_;
  std::vector<std::unique_ptr<DatabaseNode>> nodes_;
  // Transport after nodes_, sessions/clients after transport_: members are
  // destroyed in reverse declaration order, and each layer unsubscribes
  // from the one below in its destructor.
  std::shared_ptr<InProcessTransport> transport_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::map<std::string, Client*> admins_;
  bool started_ = false;
};

}  // namespace brdb

#endif  // BRDB_CORE_BLOCKCHAIN_NETWORK_H_
