#include "core/node.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <functional>
#include <set>

#include "common/logging.h"
#include "sql/parser.h"
#include "storage/partition.h"

namespace brdb {

namespace {

/// NodeConfig::pipeline_depth resolution: explicit config wins, then the
/// BRDB_PIPELINE_DEPTH environment override (scripts/check.sh uses it to
/// run the whole suite at depth 1), then the default of 2.
size_t ResolvePipelineDepth(size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("BRDB_PIPELINE_DEPTH")) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 2;
}

/// NodeConfig::partitions resolution, mirroring the pipeline depth:
/// explicit config wins, then $BRDB_PARTITIONS (check.sh sweeps it for the
/// cross-partition determinism gate), then 1. The TxnManager normalizes
/// the result to a power of two <= kMaxPartitions.
size_t ResolvePartitions(size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("BRDB_PARTITIONS")) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 1;
}

/// NodeConfig::analytics_columnar resolution: $BRDB_ANALYTICS overrides
/// (check.sh uses it to run the suite with the columnar path off), else the
/// configured value.
bool ResolveAnalytics(bool configured) {
  if (const char* env = std::getenv("BRDB_ANALYTICS")) {
    return std::atoi(env) != 0;
  }
  return configured;
}

BlockNum ResolveSegmentBlocks(size_t configured) {
  if (configured > 0) return static_cast<BlockNum>(configured);
  if (const char* env = std::getenv("BRDB_SEGMENT_BLOCKS")) {
    int v = std::atoi(env);
    if (v > 0) return static_cast<BlockNum>(v);
  }
  return 16;
}

}  // namespace

DatabaseNode::DatabaseNode(NodeConfig config, Identity identity,
                           std::shared_ptr<CertificateRegistry> registry,
                           SimNetwork* net, OrderingService* ordering)
    : config_(std::move(config)),
      identity_(std::move(identity)),
      registry_(std::move(registry)),
      net_(net),
      ordering_(ordering),
      endpoint_("peer:" + config_.name),
      db_(TxnManagerOptions{config_.txn_lock_stripes,
                            ResolvePartitions(config_.partitions)},
          config_.index_backend),
      engine_(&db_),
      checkpoints_(config_.name, config_.checkpoint_interval) {
  if (config_.block_store_path.empty()) {
    block_store_ = std::make_unique<BlockStore>();
  } else {
    BlockStoreOptions store_options;
    store_options.fsync_policy = config_.fsync_policy;
    if (config_.block_store_segment_bytes > 0) {
      store_options.segment_bytes = config_.block_store_segment_bytes;
    }
    if (config_.fsync_batch_blocks > 0) {
      store_options.fsync_batch_blocks = config_.fsync_batch_blocks;
    }
    store_options.fault_injector = config_.fault_injector;
    auto opened = BlockStore::Open(config_.block_store_path, store_options);
    if (opened.ok()) {
      block_store_ = std::move(opened).value();
      if (block_store_->torn_tail_truncations() > 0) {
        BRDB_LOG(kWarn, config_.name)
            << "block store recovered from a torn tail write; height "
            << block_store_->Height();
      }
    } else {
      BRDB_LOG(kError, config_.name)
          << "block store corrupt: " << opened.status().ToString();
      block_store_ = std::make_unique<BlockStore>();
    }
    if (config_.state_checkpoint_interval > 0) {
      checkpoint_writer_ = std::make_unique<CheckpointWriter>(
          config_.block_store_path + "/checkpoints");
    }
  }
  backoff_rng_.seed(static_cast<unsigned>(
      std::hash<std::string>{}(config_.name) | 1u));
  // Merge the legacy skip-commit flag into the armed policy bitmask.
  ByzantinePolicy initial = config_.byzantine;
  initial.skip_commit = initial.skip_commit || config_.byzantine_skip_commit;
  byz_mask_.store(initial.ToMask());
  pipeline_depth_ = ResolvePipelineDepth(config_.pipeline_depth);
  partitions_ = db_.txn_manager()->partitions();  // normalized power of two
  metrics_.SetPartitionCount(partitions_);
  // Split the executor budget across the partition groups; group 0's pool
  // doubles as the shared pool (signature verification, checkpoint
  // capture). With one partition this is exactly the old single pool.
  const size_t per_group =
      std::max<size_t>(1, config_.executor_threads / partitions_);
  executors_ = std::make_unique<ThreadPool>(per_group);
  for (size_t p = 1; p < partitions_; ++p) {
    extra_executors_.push_back(std::make_unique<ThreadPool>(per_group));
  }
  verifier_ = std::make_unique<SignatureVerifier>(
      executors_.get(),
      config_.sig_cache_capacity == 0 ? 65536 : config_.sig_cache_capacity);
  analytics_enabled_ = ResolveAnalytics(config_.analytics_columnar);
  history_opts_.segment_blocks =
      ResolveSegmentBlocks(config_.analytics_segment_blocks);
  history_opts_.archive_dir =
      !config_.analytics_dir.empty()
          ? config_.analytics_dir
          : (config_.block_store_path.empty()
                 ? ""
                 : config_.block_store_path + "/columnar");
  Status st = RegisterSystemContracts(&contracts_);
  if (!st.ok()) {
    BRDB_LOG(kError, config_.name) << st.ToString();
  }
}

DatabaseNode::~DatabaseNode() { Stop(); }

sql::ExecOptions DatabaseNode::FlowOptions() const {
  sql::ExecOptions opts =
      config_.flow == TransactionFlow::kExecuteOrderParallel
          ? sql::ExecOptions::ExecuteOrderParallel()
          : sql::ExecOptions::OrderThenExecute();
  // DDL reaches the blockchain schema only through deployment contracts.
  opts.allow_ddl = false;
  return opts;
}

Status DatabaseNode::Start() {
  if (running_.exchange(true)) return Status::OK();
  net_->RegisterEndpoint(endpoint_,
                         [this](const NetMessage& m) { OnNetMessage(m); });
  BlockPipeline::Hooks hooks;
  hooks.fetch = [this](BlockNum n, Block* out) { return FetchBlock(n, out); };
  hooks.prepare = [this](BlockWork* w) { PrepareBlock(w); };
  hooks.commit = [this](BlockWork* w) { CommitBlock(w); };
  pipeline_ = std::make_unique<BlockPipeline>(pipeline_depth_,
                                              std::move(hooks));
  BlockNum committed;
  {
    std::lock_guard<std::mutex> lock(blocks_mu_);
    committed = committed_height_;
  }
  if (committed == 0 && checkpoint_writer_ != nullptr) {
    committed = TryRestoreFromCheckpoint();
  }
  {
    std::lock_guard<std::mutex> lock(blocks_mu_);
    committed_height_ = committed;
    executed_height_ = committed;
    idle_polls_ = 0;
  }
  if (analytics_enabled_) {
    // Fresh store on every Start(): the version arena (as restored by the
    // checkpoint/replay above) is the source of truth, so a restart
    // re-derives the event history instead of double-feeding a survivor.
    column_store_ = std::make_unique<ColumnStore>();
    history_ = std::make_unique<HistoryBuilder>(&db_, column_store_.get(),
                                                history_opts_);
    history_->Bootstrap(committed);
    history_->Start();
  }
  // Seeding the pipeline at `committed` makes recovery replay just the
  // normal pipeline path: FetchBlock serves committed+1..tip from the
  // durable store and then falls through to §3.6 catch-up from ordering.
  pipeline_->Start(committed);
  return Status::OK();
}

BlockNum DatabaseNode::TryRestoreFromCheckpoint() {
  std::vector<BlockNum> heights = checkpoint_writer_->List();
  for (auto it = heights.rbegin(); it != heights.rend(); ++it) {
    const BlockNum h = *it;
    auto header = checkpoint_writer_->ReadHeader(h);
    if (!header.ok()) {
      BRDB_LOG(kWarn, config_.name)
          << "skipping checkpoint " << h << ": " << header.status().ToString();
      continue;
    }
    if (block_store_->Height() < h) {
      // The checkpoint outran the durable log (fsync off / torn tail):
      // state without its blocks is unverifiable, prefer an older one.
      BRDB_LOG(kWarn, config_.name)
          << "skipping checkpoint " << h << ": block log ends at "
          << block_store_->Height();
      continue;
    }
    auto block = block_store_->Get(h);
    if (!block.ok() || block.value().hash() != header.value().block_hash) {
      BRDB_LOG(kWarn, config_.name)
          << "skipping checkpoint " << h
          << ": block hash does not match the local chain";
      continue;
    }
    auto restored = checkpoint_writer_->Restore(h, &db_);
    if (!restored.ok()) {
      BRDB_LOG(kError, config_.name)
          << "checkpoint " << h
          << " failed to restore: " << restored.status().ToString();
      // The partial restore wiped the catalog; rebuild the pristine
      // bootstrap state before trying an older checkpoint (or genesis).
      db_.ResetToPristine();
      for (const Identity& id : seeded_identities_) {
        (void)SeedCertificateRow(id);
      }
      continue;
    }
    RebuildContractsFromDeployments();
    // Re-seed the §3.3.4 vote bookkeeping so peer votes for block h that
    // ride in post-restart blocks still compare against our root.
    checkpoints_.RecordLocal(h, restored.value().write_set_root);
    metrics_.OnCheckpointRestore(h);
    BRDB_LOG(kInfo, config_.name)
        << "restored state checkpoint at block " << h << "; replaying "
        << (block_store_->Height() - h) << " of " << block_store_->Height()
        << " blocks";
    return h;
  }
  return 0;
}

void DatabaseNode::RebuildContractsFromDeployments() {
  auto table = db_.GetTable(kDeployTable);
  if (!table.ok()) return;
  // Live 'deployed' rows, in deploy_id order (ids are assigned in commit
  // order, so replaying in id order reproduces the registry evolution —
  // later re-deployments of a name win, drops land after their creates).
  struct Deployed {
    int64_t id;
    std::string sql_text;
    BlockNum block;  ///< block that committed the deployment (version stamp)
  };
  std::vector<Deployed> rows;
  for (RowId id : table.value()->ScanAllRowIds()) {
    VersionMeta meta = table.value()->MetaOf(id);
    if (meta.creator_aborted || meta.xmax != 0) continue;
    const Row& row = table.value()->ValuesOf(id);
    if (row.size() < 4 || row[3].AsText() != "deployed") continue;
    rows.push_back({row[0].AsInt(), row[1].AsText(), meta.creator_block});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Deployed& a, const Deployed& b) { return a.id < b.id; });
  for (const Deployed& dep : rows) {
    auto parsed = ParseDeploymentSql(dep.sql_text);
    if (!parsed.ok()) continue;
    RegistryOp op;
    switch (parsed.value().kind) {
      case DeploymentSql::Kind::kCreateProcedure:
        op.kind = RegistryOp::Kind::kRegisterProcedure;
        op.name = parsed.value().name;
        op.body = parsed.value().body;
        op.num_params = parsed.value().num_params;
        break;
      case DeploymentSql::Kind::kDropProcedure:
        op.kind = RegistryOp::Kind::kDropProcedure;
        op.name = parsed.value().name;
        break;
      case DeploymentSql::Kind::kDdl:
        continue;  // tables came back with the checkpoint itself
    }
    Status applied = contracts_.Apply(op, dep.block);
    if (!applied.ok()) {
      BRDB_LOG(kWarn, config_.name)
          << "restoring deployment " << dep.id
          << " failed: " << applied.ToString();
    }
  }
}

void DatabaseNode::Stop() {
  if (!running_.exchange(false)) return;
  blocks_cv_.notify_all();
  height_cv_.notify_all();
  exec_cv_.notify_all();
  if (pipeline_ != nullptr) pipeline_->Stop();
  if (history_ != nullptr) history_->Stop();
  net_->UnregisterEndpoint(endpoint_);
  executors_->Wait();
}

BlockNum DatabaseNode::Height() const {
  std::lock_guard<std::mutex> lock(blocks_mu_);
  return committed_height_;
}

BlockNum DatabaseNode::ExecutedHeight() const {
  std::lock_guard<std::mutex> lock(blocks_mu_);
  return executed_height_;
}

void DatabaseNode::SetPeerEndpoints(std::vector<std::string> endpoints) {
  peer_endpoints_ = std::move(endpoints);
}

Status DatabaseNode::SeedCertificate(const Identity& id) {
  // Remember the identity: if a later checkpoint restore is abandoned
  // mid-way, the pristine rebuild must replay these bootstrap rows.
  seeded_identities_.push_back(id);
  return SeedCertificateRow(id);
}

Status DatabaseNode::SeedCertificateRow(const Identity& id) {
  TxnContext ctx(&db_,
                 db_.txn_manager()->BeginAtCurrentCsn(),
                 TxnMode::kInternal);
  sql::ExecOptions lenient;
  auto r = engine_.Execute(
      &ctx, "INSERT INTO pgcerts VALUES ($1, $2, $3, $4)",
      {Value::Text(id.name), Value::Text(id.organization),
       Value::Text(PrincipalRoleToString(id.role)),
       Value::Int(static_cast<int64_t>(id.keys.public_key))},
      lenient);
  if (!r.ok()) return r.status();
  return ctx.CommitInternal(0);
}

DatabaseNode::SubscriptionId DatabaseNode::Subscribe(NotificationFn fn) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  SubscriptionId id = next_sub_id_++;
  subscribers_.emplace(id, std::move(fn));
  return id;
}

void DatabaseNode::Unsubscribe(SubscriptionId id) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  subscribers_.erase(id);
}

void DatabaseNode::Notify(const std::string& txid, const Status& status,
                          BlockNum block) {
  // Callbacks run under subs_mu_ so Unsubscribe() synchronizes with
  // delivery: once it returns, no callback for that subscription is running
  // or will run — a destroyed subscriber (transport, session) is safe.
  // Callbacks therefore must not re-enter Subscribe/Unsubscribe.
  TxnNotification n{txid, status, block};
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (const auto& [id, fn] : subscribers_) fn(n);
}

Status DatabaseNode::Authenticate(const Transaction& tx,
                                  PrincipalRole* role_out,
                                  bool skip_signature,
                                  bool allow_pgcerts_fallback) {
  if (skip_signature) {
    // The verifier cache already vouched for this txid; only the role
    // remains to resolve.
    auto role = registry_->RoleOf(tx.user());
    if (role.ok()) {
      *role_out = role.value();
      return Status::OK();
    }
    if (!allow_pgcerts_fallback) return role.status();
  } else {
    Status st = tx.Authenticate(*registry_);
    if (st.ok()) {
      auto role = registry_->RoleOf(tx.user());
      *role_out = role.ok() ? role.value() : PrincipalRole::kClient;
      verifier_->MarkVerified(tx);
      return Status::OK();
    }
    if (st.code() != StatusCode::kNotFound) return st;
    if (!allow_pgcerts_fallback) return st;
  }

  // Fall back to pgcerts: users onboarded on-chain via create_user.
  TxnContext ctx(&db_,
                 db_.txn_manager()->BeginAtCurrentCsn(),
                 TxnMode::kInternal);
  auto r = engine_.Execute(&ctx,
                           "SELECT pubkey, role FROM pgcerts "
                           "WHERE username = $1",
                           {Value::Text(tx.user())});
  if (!r.ok()) return r.status();
  if (r.value().rows.size() != 1) {
    return Status::NotFound("unknown user " + tx.user());
  }
  if (!skip_signature) {
    uint64_t pubkey =
        static_cast<uint64_t>(r.value().rows[0][0].AsInt());
    if (!Schnorr::Verify(pubkey, tx.SignedPayload(), tx.signature())) {
      return Status::PermissionDenied("signature verification failed for " +
                                      tx.user());
    }
    verifier_->MarkVerified(tx);
  }
  const std::string& role = r.value().rows[0][1].AsText();
  *role_out =
      role == "admin" ? PrincipalRole::kAdmin : PrincipalRole::kClient;
  return Status::OK();
}

bool DatabaseNode::IsDuplicate(const std::string& txid) {
  // Direct index probe on pgledger.txid — this runs on every submission and
  // every block transaction, so it bypasses SQL parsing entirely.
  auto table = db_.GetTable(kLedgerTable);
  if (!table.ok()) return false;
  int col = table.value()->schema().ColumnIndex("txid");
  Value key = Value::Text(txid);
  auto ids = table.value()->IndexRange(col, &key, true, &key, true);
  if (!ids.ok()) return false;
  for (RowId id : ids.value()) {
    VersionMeta meta = table.value()->MetaOf(id);
    if (meta.creator_aborted) continue;
    if (db_.txn_manager()->StateOf(meta.xmin) == TxnState::kCommitted) {
      return true;
    }
  }
  return false;
}

Status DatabaseNode::SubmitTransaction(const Transaction& tx) {
  if (!running_.load()) return Status::Unavailable("node not running");
  // A chaos kill severs this node's network entirely; the direct ordering
  // call below bypasses SimNetwork, so gate it here too.
  if (config_.chaos != nullptr && config_.chaos->EndpointDown(config_.name)) {
    return Status::Unavailable("node network down (chaos kill)");
  }
  if (config_.flow != TransactionFlow::kExecuteOrderParallel) {
    return Status::InvalidArgument(
        "order-then-execute clients submit to the ordering service");
  }
  PrincipalRole role;
  BRDB_RETURN_NOT_OK(Authenticate(tx, &role));
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    if (active_.count(tx.id())) {
      return Status::AlreadyExists("transaction already submitted");
    }
  }
  if (IsDuplicate(tx.id())) {
    return Status::AlreadyExists("transaction id already on the ledger");
  }
  // Forward to the other peers and to ordering in the background (§3.4.1).
  std::string bytes = tx.Encode();
  net_->Broadcast(endpoint_, peer_endpoints_, kMsgForwardTx, bytes);
  BRDB_RETURN_NOT_OK(ordering_->SubmitTransaction(tx));
  StartExecution(tx, /*eop_mode=*/true);
  return Status::OK();
}

void DatabaseNode::OnNetMessage(const NetMessage& m) {
  if (m.type == kMsgBlock) {
    auto block = Block::Decode(m.payload);
    if (block.ok()) EnqueueBlock(std::move(block).value());
    return;
  }
  if (m.type == kMsgForwardTx) {
    auto tx = Transaction::Decode(m.payload);
    if (!tx.ok()) return;
    PrincipalRole role;
    if (!Authenticate(tx.value(), &role).ok()) return;
    StartExecution(tx.value(), /*eop_mode=*/true);
    return;
  }
}

void DatabaseNode::EnqueueBlock(Block block) {
  metrics_.OnBlockReceived();
  Status st = block.VerifySignatures(*registry_,
                                     config_.min_orderer_signatures,
                                     executors_.get());
  if (!st.ok()) {
    BRDB_LOG(kWarn, config_.name)
        << "rejecting block " << block.number() << ": " << st.ToString();
    return;
  }
  std::lock_guard<std::mutex> lock(blocks_mu_);
  if (block.number() <= block_store_->Height()) return;  // duplicate
  pending_blocks_.emplace(block.number(), std::move(block));
  DrainPendingLocked();
  blocks_cv_.notify_all();
}

void DatabaseNode::DrainPendingLocked() {
  // Move any in-sequence prefix into the durable store. A failed append
  // (I/O error on a file-backed store) keeps the block in pending_blocks_
  // so the next enqueue or fetch poll retries it — but on a bounded
  // exponential backoff: every enqueue and every ~2ms fetch poll lands
  // here, and hammering a sick disk at poll rate helps nobody.
  if (append_fail_streak_ > 0 &&
      std::chrono::steady_clock::now() < next_append_retry_) {
    return;
  }
  for (auto it = pending_blocks_.begin();
       it != pending_blocks_.end() &&
       it->first == block_store_->Height() + 1;) {
    Status append = block_store_->Append(it->second);
    if (!append.ok()) {
      metrics_.OnBlockAppendFailure();
      ++append_fail_streak_;
      // 2ms doubling per consecutive failure, capped at 500ms, scaled by
      // a uniform [0.75, 1.25) jitter so a fleet of peers retrying a
      // shared sick volume doesn't thunder in lockstep.
      uint64_t shift = std::min<uint64_t>(append_fail_streak_ - 1, 8);
      double base_ms = std::min(500.0, 2.0 * static_cast<double>(1ULL << shift));
      double unit = static_cast<double>(backoff_rng_() - backoff_rng_.min()) /
                    static_cast<double>(backoff_rng_.max() - backoff_rng_.min());
      auto delay_ms =
          std::max<uint64_t>(1, static_cast<uint64_t>(base_ms * (0.75 + 0.5 * unit)));
      next_append_retry_ = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(delay_ms);
      metrics_.SetBlockAppendRetryBackoffMs(delay_ms);
      BRDB_LOG(kError, config_.name)
          << "block " << it->first
          << " append failed (kept pending, retry in " << delay_ms
          << " ms): " << append.ToString();
      break;
    }
    if (append_fail_streak_ > 0) {
      append_fail_streak_ = 0;
      metrics_.SetBlockAppendRetryBackoffMs(0);
    }
    it = pending_blocks_.erase(it);
  }
}

bool DatabaseNode::FetchBlock(BlockNum next, Block* out) {
  if (!running_.load()) return false;
  {
    std::lock_guard<std::mutex> lock(blocks_mu_);
    DrainPendingLocked();  // retry appends that failed earlier
  }
  if (block_store_->Height() >= next) {
    auto block = block_store_->Get(next);
    if (block.ok()) {
      fetch_fail_streak_ = 0;
      *out = std::move(block).value();
      return true;
    }
    // A corrupt store read is likely permanent: back off instead of
    // spinning hot, and keep the log rate bounded (the seed gave up with
    // one line; retrying leaves room for an operator-repaired store).
    if (fetch_fail_streak_++ % 512 == 0) {
      BRDB_LOG(kError, config_.name)
          << "block " << next
          << " unreadable from store (retrying): "
          << block.status().ToString();
    }
    std::unique_lock<std::mutex> lock(blocks_mu_);
    blocks_cv_.wait_for(lock, std::chrono::milliseconds(2));
    return false;
  }
  bool gap;
  {
    std::lock_guard<std::mutex> lock(blocks_mu_);
    gap = !pending_blocks_.empty() &&
          pending_blocks_.begin()->first > block_store_->Height() + 1;
  }
  // Missing block (§3.6): an observed gap triggers an immediate
  // retransmission fetch; even without one, poll ordering periodically —
  // a node whose deliveries were lost (partition, restart) must catch up
  // on its own once connectivity returns. The direct ordering call
  // bypasses SimNetwork, so a chaos kill must gate it here — otherwise a
  // "dead" node would keep catching up through the back door.
  if ((gap || ++idle_polls_ % 50 == 0) &&
      !(config_.chaos != nullptr && config_.chaos->EndpointDown(config_.name))) {
    auto missing = ordering_->GetBlock(next);
    if (missing.ok()) {
      EnqueueBlock(std::move(missing).value());
      return false;  // the next fetch round reads it from the store
    }
  }
  std::unique_lock<std::mutex> lock(blocks_mu_);
  blocks_cv_.wait_for(lock, std::chrono::milliseconds(2));
  return false;
}

std::shared_ptr<ExecEntry> DatabaseNode::StartExecution(
    const Transaction& tx, bool eop_mode, BlockNum started_by_block) {
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    auto it = active_.find(tx.id());
    if (it != active_.end()) {
      if (started_by_block == 0) return it->second;
      if (it->second->claimed_by_block == 0 ||
          it->second->claimed_by_block == started_by_block) {
        it->second->claimed_by_block = started_by_block;
        return it->second;
      }
      // The txid is already claimed by an earlier in-flight block: once
      // that block commits, this instance is a ledger duplicate — the
      // same conclusion the serial loop reached through IsDuplicate.
      auto dup = std::make_shared<ExecEntry>();
      dup->tx = tx;
      dup->exec_status =
          Status::AlreadyExists("duplicate transaction identifier");
      dup->done = true;
      return dup;
    }
  }
  auto entry = std::make_shared<ExecEntry>();
  entry->tx = tx;
  entry->started_by_block = started_by_block;
  entry->claimed_by_block = started_by_block;

  PrincipalRole role = PrincipalRole::kClient;
  // Skip the signature check when a batch-verification stage or an earlier
  // path (submission, forward) already verified this exact signed content.
  // Block-started entries must not consult pgcerts here: it is
  // block-ordered state an in-flight earlier block may still change
  // (create_user / delete_user / update_user_key), so a prepare-time read
  // would make the decision depend on pipeline depth. The immutable
  // bootstrap registry decides the fast path; anything else defers to the
  // executor task, which authenticates in full at committed height
  // block-1 — the exact point the legacy serial loop authenticated at.
  Status auth = Authenticate(
      tx, &role, /*skip_signature=*/verifier_->WasVerified(tx),
      /*allow_pgcerts_fallback=*/started_by_block == 0);
  entry->role = role;
  entry->auth_retry = !auth.ok() && started_by_block > 0;
  bool duplicate = (auth.ok() || entry->auth_retry) && IsDuplicate(tx.id());
  {
    std::lock_guard<std::mutex> lock(exec_mu_);
    auto [it, inserted] = active_.emplace(tx.id(), entry);
    if (!inserted) {
      if (started_by_block > 0 && it->second->claimed_by_block == 0) {
        it->second->claimed_by_block = started_by_block;
      }
      return it->second;
    }
    if (!auth.ok() && !entry->auth_retry) {
      entry->exec_status = auth;
      entry->done = true;
      exec_cv_.notify_all();
      return entry;
    }
    if (duplicate && !entry->auth_retry) {
      entry->exec_status =
          Status::AlreadyExists("duplicate transaction identifier");
      entry->done = true;
      exec_cv_.notify_all();
      return entry;
    }
  }

  const uint32_t home = RouteToPartition(tx);
  metrics_.OnTxnRouted(home);
  ExecutorGroup(home)->Submit([this, entry, eop_mode, started_by_block, auth,
                               duplicate, home] {
    Micros t0 = RealClock::Shared()->NowMicros();
    auto finish = [&](const Status& st) {
      entry->exec_status = st;
      // Notify while holding the lock: the commit thread may observe
      // done==true and finish node shutdown the instant the lock drops,
      // so a notify after unlock could touch a destroyed cv.
      std::lock_guard<std::mutex> lock(exec_mu_);
      entry->done = true;
      exec_cv_.notify_all();
    };
    // Wait under blocks_mu_ until `pred` (a committed-height condition)
    // holds or the node stops; true when the node is still running.
    auto wait_height = [&](auto pred) {
      std::unique_lock<std::mutex> lock(blocks_mu_);
      height_cv_.wait(lock, [&] { return !running_.load() || pred(); });
      return running_.load();
    };

    Snapshot snap;
    if (eop_mode) {
      BlockNum h = entry->tx.snapshot_height();
      std::unique_lock<std::mutex> lock(blocks_mu_);
      height_cv_.wait(lock, [&] {
        return !running_.load() || entry->doomed_invalid ||
               committed_height_ >= h;
      });
      if (!running_.load() || entry->doomed_invalid) {
        lock.unlock();
        finish(Status::SerializationFailure(
            "snapshot height " + std::to_string(h) + " unreachable"));
        return;
      }
      snap = Snapshot::AtBlockHeight(h);
    } else if (started_by_block > 0) {
      // OTE snapshot barrier: "execute on the state committed by the
      // previous block". Redundant at depth 1 (the prepare stage already
      // waited) but authoritative under pipelining.
      if (!wait_height(
              [&] { return committed_height_ >= started_by_block - 1; })) {
        finish(Status::Unavailable("node stopping"));
        return;
      }
    }

    Status auth_status = auth;
    PrincipalRole role = entry->role;
    if (entry->auth_retry) {
      if (!wait_height(
              [&] { return committed_height_ >= started_by_block - 1; })) {
        finish(Status::Unavailable("node stopping"));
        return;
      }
      auth_status = Authenticate(entry->tx, &role,
                                 verifier_->WasVerified(entry->tx));
      if (!auth_status.ok()) {
        finish(auth_status);
        return;
      }
      entry->role = role;
      if (duplicate) {
        finish(Status::AlreadyExists("duplicate transaction identifier"));
        return;
      }
    }

    // Contract versions are resolved by block height (below), so no
    // registry wait is needed here: the snapshot barriers above already
    // guarantee every registry op at or below the resolution height has
    // been applied, and ops from later in-flight blocks are stamped with
    // their block number and skipped by ResolveAt regardless of timing.

    TxnInfo* info =
        eop_mode ? db_.txn_manager()->Begin(snap, entry->tx.id(), home)
                 : db_.txn_manager()->BeginAtCurrentCsn(entry->tx.id(), home);
    entry->txn = std::make_unique<TxnContext>(&db_, info, TxnMode::kNormal);

    ContractContext cctx(entry->txn.get(), &engine_, &contracts_,
                         entry->tx.user(), entry->tx.args(), FlowOptions());
    cctx.set_invoker_role(role);
    // Resolve the contract at the same height the transaction reads data:
    // the client's snapshot height (EOP) or the state committed by the
    // previous block (OTE). Client submissions and peer forwards
    // (started_by_block == 0) are EOP and carry their snapshot height.
    const BlockNum resolve_at =
        eop_mode ? entry->tx.snapshot_height()
                 : (started_by_block > 0 ? started_by_block - 1
                                         : kLatestBlock);
    entry->exec_status =
        contracts_.Invoke(entry->tx.contract(), &cctx, resolve_at);
    entry->registry_ops = cctx.pending_registry_ops();

    entry->exec_us = RealClock::Shared()->NowMicros() - t0;
    metrics_.OnTxnExecuted(entry->exec_us);
    {
      // Notify under the lock — see `finish` above for the shutdown race.
      std::lock_guard<std::mutex> lock(exec_mu_);
      entry->done = true;
      exec_cv_.notify_all();
    }
  });
  return entry;
}

uint32_t DatabaseNode::RouteToPartition(const Transaction& tx) const {
  if (partitions_ <= 1) return 0;
  if (!tx.args().empty()) {
    return PartitionOfValue(tx.args()[0], partitions_);
  }
  return PartitionOfValue(Value::Text(tx.id()), partitions_);
}

void DatabaseNode::WriteLedgerRows(
    const Block& block,
    const std::vector<std::shared_ptr<ExecEntry>>& entries) {
  TxnContext ctx(&db_,
                 db_.txn_manager()->BeginAtCurrentCsn(),
                 TxnMode::kInternal);
  for (size_t i = 0; i < entries.size(); ++i) {
    const Transaction& tx = entries[i]->tx;
    std::string args_text;
    for (size_t a = 0; a < tx.args().size(); ++a) {
      if (a) args_text += ",";
      args_text += tx.args()[a].ToString();
    }
    auto r = engine_.Execute(
        &ctx,
        "INSERT INTO pgledger (block_num, tx_seq, txid, username, contract, "
        "args, commit_time) VALUES ($1, $2, $3, $4, $5, $6, $7)",
        {Value::Int(static_cast<int64_t>(block.number())),
         Value::Int(static_cast<int64_t>(i)), Value::Text(tx.id()),
         Value::Text(tx.user()), Value::Text(tx.contract()),
         Value::Text(args_text),
         Value::Int(RealClock::Shared()->NowMicros())});
    if (!r.ok()) {
      BRDB_LOG(kError, config_.name)
          << "pgledger insert failed: " << r.status().ToString();
    }
  }
  Status st = ctx.CommitInternal(block.number());
  if (!st.ok()) {
    BRDB_LOG(kError, config_.name) << st.ToString();
  }
}

void DatabaseNode::UpdateLedgerStatuses(
    const Block& block,
    const std::vector<std::shared_ptr<ExecEntry>>& entries) {
  TxnContext ctx(&db_,
                 db_.txn_manager()->BeginAtCurrentCsn(),
                 TxnMode::kInternal);
  for (const auto& entry : entries) {
    std::string status = entry->exec_status.ok()
                             ? "committed"
                             : std::string("aborted: ") +
                                   StatusCodeToString(
                                       entry->exec_status.code());
    int64_t local_id =
        entry->txn != nullptr ? static_cast<int64_t>(entry->txn->id()) : 0;
    auto r = engine_.Execute(
        &ctx,
        "UPDATE pgledger SET status = $2, local_txn = $3 "
        "WHERE txid = $1 AND block_num = $4",
        {Value::Text(entry->tx.id()), Value::Text(status),
         Value::Int(local_id),
         Value::Int(static_cast<int64_t>(block.number()))});
    if (!r.ok()) {
      BRDB_LOG(kError, config_.name)
          << "pgledger status update failed: " << r.status().ToString();
    }
  }
  Status st = ctx.CommitInternal(block.number());
  if (!st.ok()) {
    BRDB_LOG(kError, config_.name) << st.ToString();
  }
}

void DatabaseNode::PrepareBlock(BlockWork* work) {
  const Block& block = work->block;
  const bool eop = config_.flow == TransactionFlow::kExecuteOrderParallel;
  work->t0 = RealClock::Shared()->NowMicros();

  // Stage 1 — batched signature verification: the block's transaction
  // signatures are independent, so they verify concurrently (executor pool
  // + this thread) before any execution starts, overlapping the previous
  // block's serial commit. Successes land in the verifier cache and make
  // the per-transaction Authenticate below skip the crypto; failures
  // simply fall through to the serial path, which reproduces the exact
  // error. Transactions verified at submission/forward time cost nothing.
  {
    std::vector<const Transaction*> to_verify;
    to_verify.reserve(block.transactions().size());
    for (const Transaction& tx : block.transactions()) {
      to_verify.push_back(&tx);
    }
    (void)verifier_->VerifyTransactions(*registry_, to_verify);
  }
  Micros s2 = RealClock::Shared()->NowMicros();
  work->verify_us = s2 - work->t0;

  if (!eop) {
    // OTE snapshot barrier: executions — and the pgledger rows below,
    // which OTE's CSN snapshots could otherwise observe early — must see
    // exactly the state committed by block-1. Only stage 1 overlaps the
    // previous commit in this flow; EOP snapshots are block-height-pinned
    // by the client, so stage 2 overlaps fully there.
    std::unique_lock<std::mutex> lock(blocks_mu_);
    height_cv_.wait(lock, [&] {
      return !running_.load() || committed_height_ >= block.number() - 1;
    });
    if (!running_.load()) {
      work->aborted = true;
      return;
    }
  }

  // Stage 2 — collect / start executions. A txid may legitimately already
  // be executing (EOP forwarding); anything not yet known is "missing" and
  // is started now (§3.4.3).
  std::set<std::string> seen_in_block;
  for (const Transaction& tx : block.transactions()) {
    if (!seen_in_block.insert(tx.id()).second) {
      // Same id twice within one block: only the first instance runs.
      auto dup = std::make_shared<ExecEntry>();
      dup->tx = tx;
      dup->exec_status =
          Status::AlreadyExists("duplicate transaction id within block");
      dup->done = true;
      work->entries.push_back(std::move(dup));
      continue;
    }
    bool known;
    {
      std::lock_guard<std::mutex> lock(exec_mu_);
      known = active_.count(tx.id()) > 0;
    }
    if (eop && !known) metrics_.OnMissingTxn();
    auto entry = StartExecution(tx, eop, block.number());
    if (eop && tx.snapshot_height() >= block.number()) {
      // The snapshot height can never be reached before this block
      // commits; abort deterministically on every node.
      {
        std::lock_guard<std::mutex> lock(blocks_mu_);
        entry->doomed_invalid = true;
      }
      height_cv_.notify_all();
    }
    work->entries.push_back(std::move(entry));
  }

  WriteLedgerRows(block, work->entries);
  work->prepare_us = RealClock::Shared()->NowMicros() - s2;
  {
    std::lock_guard<std::mutex> lock(blocks_mu_);
    executed_height_ = block.number();
  }
}

void DatabaseNode::CommitBlock(BlockWork* work) {
  if (work->aborted) return;  // shutdown interrupted the prepare stage
  const Block& block = work->block;
  const bool eop = config_.flow == TransactionFlow::kExecuteOrderParallel;
  // Snapshot the armed misbehavior policy once per block: a chaos event
  // flipping it mid-block would otherwise tear (e.g. skip the commit but
  // vote the honest hash).
  const ByzantinePolicy byz = byzantine_policy();
  std::vector<std::shared_ptr<ExecEntry>>& entries = work->entries;
  std::vector<TxnNotification> decided;
  // Stage-3 clock starts here, not at work->t0: under pipelining the
  // prepare stamp overlaps the previous block's commit (and ready-queue
  // wait), and summing overlapped spans would inflate bpt/su beyond wall
  // time. Block processing time = its own stage durations.
  Micros t0 = RealClock::Shared()->NowMicros();

  // Pipeline occupancy at commit entry: blocks prepared but not yet
  // committed (1 = serial behavior, > 1 = overlap actually happening).
  size_t occupancy;
  {
    std::lock_guard<std::mutex> lock(blocks_mu_);
    occupancy = static_cast<size_t>(executed_height_ - committed_height_);
  }

  // Local txn ids of the block in block order, for the block-aware rules.
  auto block_members = [&] {
    std::vector<TxnId> members;
    for (const auto& e : entries) {
      if (e->txn != nullptr) members.push_back(e->txn->id());
    }
    return members;
  };

  Micros exec_done_at = t0;
  Micros commit_us_total = 0;

  auto wait_done = [&](const std::shared_ptr<ExecEntry>& e) {
    std::unique_lock<std::mutex> lock(exec_mu_);
    exec_cv_.wait(lock, [&] { return e->done || !running_.load(); });
    if (!e->done) {
      // Stopping: the pipeline drains prepared blocks through this commit
      // stage. Every executor-task gate re-checks running_, so the task
      // finishes promptly (usually with an Unavailable abort); wait for it
      // so the entry's fields are stable and no phantom "committed"
      // decision is emitted for a transaction that never ran.
      exec_cv_.wait(lock, [&] { return e->done; });
    }
  };

  auto commit_entry = [&](const std::shared_ptr<ExecEntry>& e, int pos,
                          const std::vector<TxnId>& members) {
    Micros c0 = RealClock::Shared()->NowMicros();
    Status st = e->exec_status;
    bool skip = byz.skip_commit && pos + 1 == static_cast<int>(entries.size());
    if (st.ok() && eop && e->txn != nullptr && !skip &&
        contracts_.LastChangeBlock(e->tx.contract()) >
            e->tx.snapshot_height()) {
      // Contract-upgrade rule (EOP): the transaction executed the contract
      // version current at its snapshot height, but a later block (or an
      // earlier transaction of this block — ops apply in block order)
      // changed it. Deciding here, by comparing version stamps, is
      // independent of pipeline depth and apply timing — unlike the old
      // rule that doomed whatever happened to be in flight when the
      // registry op was applied.
      st = Status::SerializationFailure(
          "smart contract " + e->tx.contract() +
          " updated after snapshot height " +
          std::to_string(e->tx.snapshot_height()));
    }
    if (st.ok() && e->txn != nullptr && !skip) {
      st = e->txn->CommitSerially(
          eop ? SsiPolicy::kBlockAware : SsiPolicy::kAbortDuringCommit,
          block.number(), pos, members);
      // Partitioned-validation accounting: did this transaction stay inside
      // one partition group, and how long did the cross-partition conflict
      // merge take if not (both recorded by ValidateForCommit).
      const TxnInfo* info = e->txn->info();
      const uint64_t touched =
          info->touched_partitions.load(std::memory_order_relaxed);
      metrics_.OnTxnValidated((touched & (touched - 1)) != 0, info->merge_ns);
    } else if (e->txn != nullptr) {
      e->txn->Abort(st.ok() ? Status::Aborted("byzantine skip") : st);
      if (skip && st.ok()) st = Status::Aborted("byzantine skip");
    }
    e->exec_status = st;
    commit_us_total += RealClock::Shared()->NowMicros() - c0;
    if (st.ok()) {
      metrics_.OnTxnCommitted();
      if (column_store_ != nullptr && e->txn != nullptr) {
        // Mirror the committed write set into the columnar event tail.
        // commit_entry runs serially in block order, so events arrive with
        // nondecreasing block stamps — the invariant the store's tail
        // relies on. System/private tables stay row-store only.
        for (const WriteRecord& w : e->txn->info()->writes) {
          Table* t = db_.GetTableById(w.table);
          if (t == nullptr || t->db_schema() != kBlockchainSchema) {
            continue;
          }
          if (w.kind != WriteRecord::Kind::kDelete) {
            column_store_->OnInsert(t, w.new_row, block.number());
          }
          if (w.kind != WriteRecord::Kind::kInsert) {
            column_store_->OnDelete(t, w.base_row, block.number());
          }
        }
      }
      // Registry changes take effect only now that the transaction
      // committed, stamped with this block so executions resolve contract
      // versions by height (§3.7). In-flight transactions that executed an
      // older version abort deterministically at their own commit slot
      // (EOP: the LastChangeBlock rule above; OTE: they resolve at their
      // block's height, so they never see a stale version at all).
      for (const RegistryOp& op : e->registry_ops) {
        Status applied = contracts_.Apply(op, block.number());
        if (!applied.ok()) {
          BRDB_LOG(kWarn, config_.name)
              << "registry op failed: " << applied.ToString();
        }
      }
    } else {
      metrics_.OnTxnAborted();
    }
    decided.push_back(TxnNotification{e->tx.id(), st, block.number()});
    {
      std::lock_guard<std::mutex> lock(exec_mu_);
      active_.erase(e->tx.id());
    }
  };

  if (config_.serial_execution) {
    // Ethereum-style baseline (§5.1): execute and commit one at a time.
    std::vector<TxnId> members;
    for (size_t i = 0; i < entries.size(); ++i) {
      wait_done(entries[i]);
      if (entries[i]->txn != nullptr) members.push_back(entries[i]->txn->id());
      commit_entry(entries[i], static_cast<int>(i), members);
    }
    exec_done_at = RealClock::Shared()->NowMicros();
  } else {
    // Execution phase barrier: every transaction of the block must be
    // ready to commit/abort before the first commit (§3.3.2 step 4).
    for (const auto& e : entries) wait_done(e);
    exec_done_at = RealClock::Shared()->NowMicros();

    std::vector<TxnId> members = block_members();
    for (size_t i = 0; i < entries.size(); ++i) {
      commit_entry(entries[i], static_cast<int>(i), members);
    }
  }

  // Checkpointing phase (§3.3.4): hash of the block's write-set.
  std::vector<std::string> write_sets;
  for (const auto& e : entries) {
    if (e->exec_status.ok() && e->txn != nullptr) {
      write_sets.push_back(e->txn->EncodeWriteSet());
    }
  }
  std::string ws_hash =
      CheckpointManager::ComputeWriteSetHash(block.number(), write_sets);
  // RecordLocal always keeps the honestly computed hash: a
  // divergent-writeset liar lies in its *vote*, not to itself, so it does
  // not spuriously flag honest peers — but every honest peer flags it.
  bool vote_due = checkpoints_.RecordLocal(block.number(), ws_hash);
  if (vote_due && config_.submit_checkpoints && !byz.withhold_votes &&
      !block.transactions().empty()) {
    std::string vote_hash = ws_hash;
    if (byz.divergent_writeset) {
      std::vector<std::string> tampered = write_sets;
      tampered.push_back("byzantine-divergent-writeset");
      vote_hash =
          CheckpointManager::ComputeWriteSetHash(block.number(), tampered);
    }
    CheckpointVote vote;
    vote.peer = config_.name;
    vote.block = block.number();
    vote.write_set_hash = vote_hash;
    vote.signature = identity_.Sign(vote.SignedPayload());
    ordering_->SubmitCheckpointVote(vote);
  }
  // Compare other peers' hashes that rode in this block.
  for (const CheckpointVote& vote : block.checkpoint_votes()) {
    if (vote.peer == config_.name) continue;
    if (!registry_->VerifySignature(vote.peer, vote.SignedPayload(),
                                    vote.signature)
             .ok()) {
      continue;  // forged vote; ignore
    }
    auto divergence = checkpoints_.ObserveVote(vote);
    if (divergence.has_value()) {
      BRDB_LOG(kWarn, config_.name)
          << "checkpoint divergence: peer " << divergence->peer
          << " reported a different write-set hash for block "
          << divergence->block;
    }
  }

  UpdateLedgerStatuses(block, entries);

  Micros now = RealClock::Shared()->NowMicros();
  Micros stage12_us = work->verify_us + work->prepare_us;
  metrics_.OnBlockProcessed(stage12_us + (now - t0),
                            stage12_us + (exec_done_at - t0),
                            commit_us_total);
  metrics_.OnPipelineBlock(work->verify_us, work->prepare_us,
                           commit_us_total, occupancy);
  db_.txn_manager()->GarbageCollect();

  // Durable state checkpoint (crash recovery): pin the catalog here on the
  // commit thread — no later block can be committing concurrently — and
  // serialize + write on the executor pool.
  MaybeWriteStateCheckpoint(block, ws_hash);

  if (history_ != nullptr) {
    // All of this block's row events are in the store; queries pinned at
    // any height <= block.number() are now fully answerable. Must precede
    // the committed-height publication below, which is what query pinning
    // reads.
    history_->NotifyCommitted(block.number());
    metrics_.SetColumnarProgress(column_store_->segments_sealed(),
                                 history_->lag());
  }

  // Publish the committed height *before* notifying: a client reacting to
  // its commit must never submit against the pre-block snapshot height.
  {
    std::lock_guard<std::mutex> lock(blocks_mu_);
    committed_height_ = block.number();
  }
  height_cv_.notify_all();
  blocks_cv_.notify_all();
  for (const TxnNotification& n : decided) {
    Notify(n.txid, n.status, n.block);
  }
}

void DatabaseNode::MaybeWriteStateCheckpoint(const Block& block,
                                             const std::string& ws_hash) {
  if (checkpoint_writer_ == nullptr ||
      block.number() % config_.state_checkpoint_interval != 0) {
    return;
  }
  if (capture_inflight_.exchange(true)) {
    // A previous capture is still serializing; skip this interval rather
    // than queue up unbounded captures — the next one covers this state.
    BRDB_LOG(kWarn, config_.name)
        << "state checkpoint at block " << block.number()
        << " skipped: previous capture still in flight";
    return;
  }
  auto pinned = std::make_shared<CheckpointWriter::PinnedState>(
      CheckpointWriter::Pin(&db_, block.number(), block.hash(), ws_hash));
  executors_->Submit([this, pinned] {
    // The checkpoint must never claim state the block log cannot back:
    // force the log durable through the pinned height first (matters for
    // kBatch/kOff policies; a no-op under kAlways).
    Status st = block_store_->Sync();
    if (st.ok()) st = checkpoint_writer_->Write(&db_, *pinned);
    if (st.ok()) {
      metrics_.OnStateCheckpointWritten();
    } else {
      BRDB_LOG(kError, config_.name)
          << "state checkpoint at block " << pinned->height
          << " failed: " << st.ToString();
    }
    capture_inflight_.store(false);
  });
}

namespace {

/// Cheap pre-parse gate for the client read paths: they accept only
/// SELECT, so rejected DML/DDL text must not occupy a slot in the shared
/// plan cache (a client could otherwise flush the contract-body plans the
/// cache keeps hot). Anything passing the gate that still fails to parse
/// is not cached either (parse failures never are).
bool LooksLikeSelect(const std::string& sql) {
  static const char kSelect[] = "select";
  size_t i = sql.find_first_not_of(" \t\r\n");
  if (i == std::string::npos || sql.size() - i < 6) return false;
  for (size_t j = 0; j < 6; ++j) {
    if (std::tolower(static_cast<unsigned char>(sql[i + j])) != kSelect[j]) {
      return false;
    }
  }
  return true;
}

}  // namespace

Status DatabaseNode::CheckQueryUser(const std::string& user) {
  auto key = registry_->PublicKeyOf(user);
  if (key.ok()) return Status::OK();
  // Also accept users onboarded on-chain.
  TxnContext probe(&db_,
                   db_.txn_manager()->BeginAtCurrentCsn(),
                   TxnMode::kInternal);
  auto r = engine_.Execute(&probe,
                           "SELECT COUNT(*) FROM pgcerts WHERE "
                           "username = $1",
                           {Value::Text(user)});
  if (!r.ok() || !r.value().Scalar().ok() ||
      r.value().Scalar().value().AsInt() == 0) {
    return Status::PermissionDenied("unknown user " + user);
  }
  return Status::OK();
}

/// True when every table a SELECT references is a blockchain-schema table —
/// the precondition for running it at a pinned block-height snapshot
/// (system/private rows carry creator_block 0 and would vanish under the
/// block-stamp visibility filter). Unresolvable names return false; the
/// row path reports the error identically.
bool DatabaseNode::AllBlockchainTables(const sql::SelectStmt& select) {
  auto is_blockchain = [&](const std::string& name) {
    auto t = db_.GetTable(name);
    return t.ok() && t.value()->db_schema() == kBlockchainSchema;
  };
  if (!select.from.has_value() || !is_blockchain(select.from->table)) {
    return false;
  }
  for (const auto& j : select.joins) {
    if (!is_blockchain(j.table.table)) return false;
  }
  return true;
}

Result<sql::ResultSet> DatabaseNode::Query(const std::string& user,
                                           const std::string& sql_text,
                                           const std::vector<Value>& params,
                                           QueryPath path) {
  BRDB_RETURN_NOT_OK(CheckQueryUser(user));
  if (!LooksLikeSelect(sql_text)) {
    return Status::PermissionDenied(
        "only individual SELECT statements may bypass the transaction flow "
        "(paper §3.7)");
  }
  auto plan = engine_.Prepare(sql_text);
  if (!plan.ok()) return plan.status();
  if (plan.value()->info().type != sql::StatementType::kSelect) {
    return Status::PermissionDenied(
        "only individual SELECT statements may bypass the transaction flow "
        "(paper §3.7)");
  }
  // Analytics-eligible SELECTs pin a block-height snapshot — kForceRow
  // included, so a parity comparison of the two paths reads the exact same
  // snapshot. Everything else keeps the legacy CSN read of the latest
  // committed state.
  const bool pinnable =
      history_ != nullptr && plan.value()->columnar_shape_ok() &&
      AllBlockchainTables(*plan.value()->statement().select);
  sql::ExecOptions opts;
  TxnContext ctx(&db_,
                 pinnable
                     ? db_.txn_manager()->Begin(Snapshot::AtBlockHeight(
                           Height()))
                     : db_.txn_manager()->BeginAtCurrentCsn(),
                 TxnMode::kInternal);
  if (pinnable && path == QueryPath::kDefault) {
    opts.columnar.enabled = true;
    opts.columnar.store = column_store_.get();
    opts.columnar.vectorized_scans = metrics_.vectorized_scans_cell();
    opts.columnar.row_fallback_scans = metrics_.row_fallback_scans_cell();
    opts.columnar.zone_map_pruned = metrics_.zone_map_pruned_cell();
  }
  auto result = engine_.ExecutePrepared(&ctx, *plan.value(), params, opts);
  if (result.ok() && byzantine_policy().tamper_reads) {
    // Byzantine tamper-reads mode (§3.5): corrupt every value handed to
    // the client. Detected client-side by cross-peer result comparison —
    // reads bypass consensus, so only redundancy can catch a lying peer.
    sql::ResultSet tampered = std::move(result).value();
    for (Row& row : tampered.rows) {
      for (Value& v : row) {
        if (v.type() == ValueType::kInt) {
          v = Value::Int(v.AsInt() + 1);
        } else if (v.type() == ValueType::kText) {
          v = Value::Text(v.AsText() + "\xE2\x88\x85");  // poisoned marker
        }
      }
    }
    return tampered;
  }
  return result;
}

Result<sql::PreparedInfo> DatabaseNode::PrepareQuery(const std::string& user,
                                                     const std::string& sql) {
  BRDB_RETURN_NOT_OK(CheckQueryUser(user));
  if (!LooksLikeSelect(sql)) {
    return Status::PermissionDenied(
        "only SELECT statements may be prepared by clients (paper §3.7)");
  }
  auto plan = engine_.Prepare(sql);
  if (!plan.ok()) return plan.status();
  if (plan.value()->info().type != sql::StatementType::kSelect) {
    return Status::PermissionDenied(
        "only SELECT statements may be prepared by clients (paper §3.7)");
  }
  return plan.value()->info();
}

Result<sql::ResultSet> DatabaseNode::LocalExecute(
    const std::string& user, const std::string& sql_text,
    const std::vector<Value>& params) {
  auto key = registry_->PublicKeyOf(user);
  if (!key.ok()) return Status::PermissionDenied("unknown user " + user);
  auto stmt = sql::Parse(sql_text);
  if (!stmt.ok()) return stmt.status();

  auto table_is_private = [&](const std::string& name) -> Status {
    auto t = db_.GetTable(name);
    if (!t.ok()) return t.status();
    if (t.value()->db_schema() != kPrivateSchema) {
      return Status::PermissionDenied(
          "table " + name + " is not in the private schema; blockchain "
          "tables change only through smart contracts (§3.7)");
    }
    return Status::OK();
  };
  switch (stmt.value().type) {
    case sql::StatementType::kInsert:
      BRDB_RETURN_NOT_OK(table_is_private(stmt.value().insert->table));
      break;
    case sql::StatementType::kUpdate:
      BRDB_RETURN_NOT_OK(table_is_private(stmt.value().update->table));
      break;
    case sql::StatementType::kDelete:
      BRDB_RETURN_NOT_OK(table_is_private(stmt.value().del->table));
      break;
    case sql::StatementType::kDropTable:
      BRDB_RETURN_NOT_OK(table_is_private(stmt.value().drop_table->table));
      break;
    case sql::StatementType::kCreateIndex:
      BRDB_RETURN_NOT_OK(table_is_private(stmt.value().create_index->table));
      break;
    case sql::StatementType::kCreateTable: {
      // Create directly in the private schema.
      std::vector<ColumnDef> cols;
      for (const auto& c : stmt.value().create_table->columns) {
        ColumnDef def;
        def.name = c.name;
        def.type = c.type;
        def.not_null = c.not_null;
        def.primary_key = c.primary_key;
        def.unique = c.unique;
        cols.push_back(std::move(def));
      }
      TableSchema schema(stmt.value().create_table->table, std::move(cols));
      for (const auto& check : stmt.value().create_table->check_exprs) {
        schema.AddCheckConstraint(check);
      }
      if (!stmt.value().create_table->partition_column.empty()) {
        int pc =
            schema.ColumnIndex(stmt.value().create_table->partition_column);
        if (pc < 0) {
          return Status::InvalidArgument(
              "PARTITION BY column " +
              stmt.value().create_table->partition_column +
              " is not a column of " + stmt.value().create_table->table);
        }
        schema.SetPartitionColumn(pc);
      }
      auto t = db_.CreateTable(std::move(schema), kPrivateSchema);
      if (!t.ok()) return t.status();
      return sql::ResultSet{};
    }
    case sql::StatementType::kSelect:
      break;  // reads may combine private and blockchain tables
  }

  TxnContext ctx(&db_,
                 db_.txn_manager()->BeginAtCurrentCsn(),
                 TxnMode::kInternal);
  sql::ExecOptions opts;
  auto r = engine_.ExecuteStatement(&ctx, stmt.value(), params, opts);
  if (!r.ok()) return r.status();
  if (stmt.value().type != sql::StatementType::kSelect) {
    BlockNum h;
    {
      std::lock_guard<std::mutex> lock(blocks_mu_);
      h = committed_height_;
    }
    BRDB_RETURN_NOT_OK(ctx.CommitInternal(h));
  }
  return r;
}

size_t DatabaseNode::Vacuum(BlockNum horizon_block) {
  size_t removed = 0;
  TxnManager* mgr = db_.txn_manager();
  for (const std::string& name : db_.TableNames()) {
    auto t = db_.GetTable(name);
    if (!t.ok()) continue;
    removed += t.value()->Vacuum(horizon_block, [mgr](TxnId id) {
      return mgr->IsAborted(id);
    });
  }
  return removed;
}

Result<sql::ResultSet> DatabaseNode::ProvenanceQuery(
    const std::string& user, const std::string& sql_text,
    const std::vector<Value>& params) {
  auto key = registry_->PublicKeyOf(user);
  if (!key.ok()) return Status::PermissionDenied("unknown user " + user);
  if (!LooksLikeSelect(sql_text)) {
    return Status::PermissionDenied("provenance queries are read-only");
  }
  auto plan = engine_.Prepare(sql_text);
  if (!plan.ok()) return plan.status();
  if (plan.value()->info().type != sql::StatementType::kSelect) {
    return Status::PermissionDenied("provenance queries are read-only");
  }
  TxnContext ctx(&db_,
                 db_.txn_manager()->BeginAtCurrentCsn(),
                 TxnMode::kProvenance);
  sql::ExecOptions opts;
  return engine_.ExecutePrepared(&ctx, *plan.value(), params, opts);
}

}  // namespace brdb
