// Per-node metrics matching the paper's micro metrics (§5):
//   brr — block receive rate (blocks/s at the middleware)
//   bpr — block processing rate (blocks/s committed)
//   bpt — mean block processing time (ms). Under the block pipeline this
//         is the sum of the block's own stage durations (verify + prepare
//         + commit-stage wall); time spent merely queued behind another
//         block's commit is excluded, so sums stay comparable to the
//         serial baseline.
//   bet — mean block execution time (ms: start of execution of all txns in
//         a block until all suspend for commit)
//   bct — mean block commit time (ms: bpt - bet, measured directly)
//   tet — mean transaction execution time (ms)
//   mt  — missing transactions per second (EOP only)
//   su  — system utilization: fraction of wall time the block processor
//         was busy (bpr * bpt in the paper)
#ifndef BRDB_CORE_METRICS_H_
#define BRDB_CORE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "storage/partition.h"

namespace brdb {

struct MetricsSnapshot {
  double elapsed_s = 0;
  uint64_t blocks_received = 0;
  uint64_t blocks_processed = 0;
  uint64_t txns_committed = 0;
  uint64_t txns_aborted = 0;
  uint64_t missing_txns = 0;

  double brr = 0;     // blocks/s
  double bpr = 0;     // blocks/s
  double bpt_ms = 0;  // ms/block
  double bet_ms = 0;  // ms/block
  double bct_ms = 0;  // ms/block
  double tet_ms = 0;  // ms/txn
  double mt = 0;      // missing txns/s
  double su = 0;      // % busy
  double commit_tps = 0;

  // Block-pipeline stage latencies (ms/block) and occupancy: how many
  // blocks were in flight (prepared, not yet committed) when each commit
  // started. avg == 1.0 means the pipeline ran serially; > 1 means
  // verify/execute of later blocks actually overlapped commits.
  double stage_verify_ms = 0;
  double stage_prepare_ms = 0;
  double stage_commit_ms = 0;
  double pipeline_occupancy_avg = 0;
  uint64_t pipeline_occupancy_max = 0;

  // Failed durable-store appends (each is retried on the next enqueue or
  // fetch poll; see DatabaseNode::DrainPendingLocked).
  uint64_t block_append_failures = 0;

  // Gauge: the retry delay (ms) chosen by the append backoff after the
  // most recent failure; 0 once an append succeeds again.
  uint64_t block_append_retry_backoff_ms = 0;

  // Durable state checkpoints written by this node (crash recovery).
  uint64_t state_checkpoints_written = 0;

  // Height of the checkpoint this node restored from at startup (0 = cold
  // start / genesis replay).
  uint64_t restored_checkpoint_height = 0;

  // Partitioned execution. Transactions whose SSI validation stayed inside
  // one partition group (no cross-partition conflict merge) vs. those that
  // took the ordered two-phase merge, the mean merge latency, and how many
  // transactions each partition's executor group ran (occupancy; sized to
  // the node's partition count).
  uint64_t single_partition_txns = 0;
  uint64_t multi_partition_txns = 0;
  double cross_partition_merge_us = 0;  // mean per multi-partition txn
  std::vector<uint64_t> partition_txns;

  // Columnar analytics (HTAP split, storage/columnar.h). Sealed history
  // segments built off the commit stream, the builder's lag behind the
  // committed height (gauge, blocks), segments skipped entirely by zone
  // maps, and how many SELECTs ran on the vectorized columnar path vs.
  // started there but fell back to the row store.
  uint64_t columnar_segments_sealed = 0;
  uint64_t columnar_builder_lag = 0;
  uint64_t zone_map_pruned_segments = 0;
  uint64_t vectorized_scans = 0;
  uint64_t row_fallback_scans = 0;
};

class NodeMetrics {
 public:
  NodeMetrics() { Reset(); }

  void Reset() {
    start_us_.store(RealClock::Shared()->NowMicros());
    blocks_received_ = 0;
    blocks_processed_ = 0;
    txns_committed_ = 0;
    txns_aborted_ = 0;
    missing_txns_ = 0;
    processing_us_ = 0;
    execution_us_ = 0;
    commit_us_ = 0;
    txn_exec_us_ = 0;
    txns_executed_ = 0;
    stage_verify_us_ = 0;
    stage_prepare_us_ = 0;
    stage_commit_us_ = 0;
    pipeline_blocks_ = 0;
    occupancy_sum_ = 0;
    occupancy_max_ = 0;
    block_append_failures_ = 0;
    block_append_retry_backoff_ms_ = 0;
    state_checkpoints_written_ = 0;
    restored_checkpoint_height_ = 0;
    single_partition_txns_ = 0;
    multi_partition_txns_ = 0;
    cross_partition_merge_ns_ = 0;
    for (auto& c : partition_txns_) c = 0;
    columnar_segments_sealed_ = 0;
    columnar_builder_lag_ = 0;
    zone_map_pruned_segments_ = 0;
    vectorized_scans_ = 0;
    row_fallback_scans_ = 0;
  }

  /// Number of partition executor groups this node runs (sizes the
  /// occupancy vector in snapshots). Not reset by Reset().
  void SetPartitionCount(size_t partitions) {
    partition_count_.store(partitions > kMaxPartitions ? kMaxPartitions
                                                       : partitions);
  }

  void OnBlockReceived() { blocks_received_.fetch_add(1); }
  void OnBlockProcessed(Micros processing_us, Micros execution_us,
                        Micros commit_us) {
    blocks_processed_.fetch_add(1);
    processing_us_.fetch_add(static_cast<uint64_t>(processing_us));
    execution_us_.fetch_add(static_cast<uint64_t>(execution_us));
    commit_us_.fetch_add(static_cast<uint64_t>(commit_us));
  }
  void OnTxnExecuted(Micros exec_us) {
    txns_executed_.fetch_add(1);
    txn_exec_us_.fetch_add(static_cast<uint64_t>(exec_us));
  }
  void OnTxnCommitted() { txns_committed_.fetch_add(1); }
  void OnTxnAborted() { txns_aborted_.fetch_add(1); }

  /// A transaction was routed to partition group `partition`'s executors.
  void OnTxnRouted(uint32_t partition) {
    if (partition < kMaxPartitions) partition_txns_[partition].fetch_add(1);
  }

  /// A transaction finished SSI commit validation. `multi` = it touched
  /// more than one partition group and merged conflicts across them,
  /// spending `merge_ns` in the ordered two-phase merge.
  void OnTxnValidated(bool multi, uint64_t merge_ns) {
    if (multi) {
      multi_partition_txns_.fetch_add(1);
      cross_partition_merge_ns_.fetch_add(merge_ns);
    } else {
      single_partition_txns_.fetch_add(1);
    }
  }
  void OnMissingTxn() { missing_txns_.fetch_add(1); }
  void OnBlockAppendFailure() { block_append_failures_.fetch_add(1); }
  void SetBlockAppendRetryBackoffMs(uint64_t ms) {
    block_append_retry_backoff_ms_.store(ms);
  }
  void OnStateCheckpointWritten() { state_checkpoints_written_.fetch_add(1); }
  void OnCheckpointRestore(uint64_t height) {
    restored_checkpoint_height_.store(height);
  }
  void OnPipelineBlock(Micros verify_us, Micros prepare_us, Micros commit_us,
                       uint64_t occupancy) {
    pipeline_blocks_.fetch_add(1);
    stage_verify_us_.fetch_add(static_cast<uint64_t>(verify_us));
    stage_prepare_us_.fetch_add(static_cast<uint64_t>(prepare_us));
    stage_commit_us_.fetch_add(static_cast<uint64_t>(commit_us));
    occupancy_sum_.fetch_add(occupancy);
    uint64_t prev = occupancy_max_.load(std::memory_order_relaxed);
    while (prev < occupancy &&
           !occupancy_max_.compare_exchange_weak(prev, occupancy)) {
    }
  }

  /// Columnar-history gauges, published by the commit path after each
  /// block (seals happen on the background builder thread).
  void SetColumnarProgress(uint64_t segments_sealed, uint64_t builder_lag) {
    columnar_segments_sealed_.store(segments_sealed,
                                    std::memory_order_relaxed);
    columnar_builder_lag_.store(builder_lag, std::memory_order_relaxed);
  }

  // Counter cells handed to sql::ExecOptions::Columnar so the executor
  // increments node metrics directly.
  std::atomic<uint64_t>* vectorized_scans_cell() { return &vectorized_scans_; }
  std::atomic<uint64_t>* row_fallback_scans_cell() {
    return &row_fallback_scans_;
  }
  std::atomic<uint64_t>* zone_map_pruned_cell() {
    return &zone_map_pruned_segments_;
  }

  uint64_t txns_committed() const { return txns_committed_.load(); }
  uint64_t txns_aborted() const { return txns_aborted_.load(); }

  MetricsSnapshot Snapshot() const {
    MetricsSnapshot s;
    Micros now = RealClock::Shared()->NowMicros();
    s.elapsed_s =
        static_cast<double>(now - start_us_.load()) / 1e6;
    if (s.elapsed_s <= 0) s.elapsed_s = 1e-9;
    s.blocks_received = blocks_received_.load();
    s.blocks_processed = blocks_processed_.load();
    s.txns_committed = txns_committed_.load();
    s.txns_aborted = txns_aborted_.load();
    s.missing_txns = missing_txns_.load();
    s.brr = static_cast<double>(s.blocks_received) / s.elapsed_s;
    s.bpr = static_cast<double>(s.blocks_processed) / s.elapsed_s;
    if (s.blocks_processed > 0) {
      s.bpt_ms = static_cast<double>(processing_us_.load()) / 1000.0 /
                 static_cast<double>(s.blocks_processed);
      s.bet_ms = static_cast<double>(execution_us_.load()) / 1000.0 /
                 static_cast<double>(s.blocks_processed);
      s.bct_ms = static_cast<double>(commit_us_.load()) / 1000.0 /
                 static_cast<double>(s.blocks_processed);
    }
    uint64_t executed = txns_executed_.load();
    if (executed > 0) {
      s.tet_ms = static_cast<double>(txn_exec_us_.load()) / 1000.0 /
                 static_cast<double>(executed);
    }
    uint64_t pipeline_blocks = pipeline_blocks_.load();
    if (pipeline_blocks > 0) {
      double blocks = static_cast<double>(pipeline_blocks);
      s.stage_verify_ms =
          static_cast<double>(stage_verify_us_.load()) / 1000.0 / blocks;
      s.stage_prepare_ms =
          static_cast<double>(stage_prepare_us_.load()) / 1000.0 / blocks;
      s.stage_commit_ms =
          static_cast<double>(stage_commit_us_.load()) / 1000.0 / blocks;
      s.pipeline_occupancy_avg =
          static_cast<double>(occupancy_sum_.load()) / blocks;
    }
    s.pipeline_occupancy_max = occupancy_max_.load();
    s.block_append_failures = block_append_failures_.load();
    s.block_append_retry_backoff_ms = block_append_retry_backoff_ms_.load();
    s.state_checkpoints_written = state_checkpoints_written_.load();
    s.restored_checkpoint_height = restored_checkpoint_height_.load();
    s.single_partition_txns = single_partition_txns_.load();
    s.multi_partition_txns = multi_partition_txns_.load();
    if (s.multi_partition_txns > 0) {
      s.cross_partition_merge_us =
          static_cast<double>(cross_partition_merge_ns_.load()) / 1000.0 /
          static_cast<double>(s.multi_partition_txns);
    }
    size_t pc = partition_count_.load();
    s.partition_txns.reserve(pc);
    for (size_t p = 0; p < pc; ++p) {
      s.partition_txns.push_back(partition_txns_[p].load());
    }
    s.columnar_segments_sealed = columnar_segments_sealed_.load();
    s.columnar_builder_lag = columnar_builder_lag_.load();
    s.zone_map_pruned_segments = zone_map_pruned_segments_.load();
    s.vectorized_scans = vectorized_scans_.load();
    s.row_fallback_scans = row_fallback_scans_.load();
    s.mt = static_cast<double>(s.missing_txns) / s.elapsed_s;
    s.su = 100.0 * static_cast<double>(processing_us_.load()) /
           (s.elapsed_s * 1e6);
    if (s.su > 100.0) s.su = 100.0;
    s.commit_tps = static_cast<double>(s.txns_committed) / s.elapsed_s;
    return s;
  }

 private:
  std::atomic<Micros> start_us_{0};
  std::atomic<uint64_t> blocks_received_{0};
  std::atomic<uint64_t> blocks_processed_{0};
  std::atomic<uint64_t> txns_committed_{0};
  std::atomic<uint64_t> txns_aborted_{0};
  std::atomic<uint64_t> missing_txns_{0};
  std::atomic<uint64_t> processing_us_{0};
  std::atomic<uint64_t> execution_us_{0};
  std::atomic<uint64_t> commit_us_{0};
  std::atomic<uint64_t> txn_exec_us_{0};
  std::atomic<uint64_t> txns_executed_{0};
  std::atomic<uint64_t> stage_verify_us_{0};
  std::atomic<uint64_t> stage_prepare_us_{0};
  std::atomic<uint64_t> stage_commit_us_{0};
  std::atomic<uint64_t> pipeline_blocks_{0};
  std::atomic<uint64_t> occupancy_sum_{0};
  std::atomic<uint64_t> occupancy_max_{0};
  std::atomic<uint64_t> block_append_failures_{0};
  std::atomic<uint64_t> block_append_retry_backoff_ms_{0};
  std::atomic<uint64_t> state_checkpoints_written_{0};
  std::atomic<uint64_t> restored_checkpoint_height_{0};
  std::atomic<uint64_t> single_partition_txns_{0};
  std::atomic<uint64_t> multi_partition_txns_{0};
  std::atomic<uint64_t> cross_partition_merge_ns_{0};
  std::atomic<size_t> partition_count_{1};
  std::array<std::atomic<uint64_t>, kMaxPartitions> partition_txns_{};
  std::atomic<uint64_t> columnar_segments_sealed_{0};
  std::atomic<uint64_t> columnar_builder_lag_{0};
  std::atomic<uint64_t> zone_map_pruned_segments_{0};
  std::atomic<uint64_t> vectorized_scans_{0};
  std::atomic<uint64_t> row_fallback_scans_{0};
};

}  // namespace brdb

#endif  // BRDB_CORE_METRICS_H_
