#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <optional>

namespace brdb {

namespace {

/// Majority decision over the per-node statuses, or nullopt while pending.
/// Caller holds rec.mu.
std::optional<Status> MajorityDecision(const detail::TxnRecord& rec) {
  const size_t majority = rec.peer_count / 2 + 1;
  size_t ok = 0, failed = 0;
  Status failure;
  for (const auto& [node, st] : rec.decisions) {
    if (st.ok()) {
      ++ok;
    } else {
      ++failed;
      failure = st;
    }
  }
  if (ok >= majority) return Status::OK();
  if (failed >= majority) return failure;
  return std::nullopt;
}

Status TimeoutStatus(const std::string& txid, const char* what,
                     std::chrono::steady_clock::time_point start,
                     Micros timeout_us) {
  auto elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  return Status::Unavailable(
      "transaction " + txid + " " + what + " after waiting " +
      std::to_string(elapsed_us / 1000) + " ms (deadline " +
      std::to_string(timeout_us / 1000) + " ms)");
}

}  // namespace

// ---------------- TxnHandle ----------------

const std::string& TxnHandle::txid() const {
  static const std::string kEmpty;
  return rec_ ? rec_->txid : kEmpty;
}

bool TxnHandle::Decided() const {
  if (!rec_) return false;
  std::lock_guard<std::mutex> lock(rec_->mu);
  return MajorityDecision(*rec_).has_value();
}

Status TxnHandle::Wait(Micros timeout_us) {
  // Submission failure first: a handle for a failed submission may carry no
  // record at all (e.g. the batch-wide EOP height probe failed), and the
  // caller needs that status — not a complaint about the handle.
  if (!submit_status_.ok()) return submit_status_;
  if (!rec_) return Status::InvalidArgument("invalid transaction handle");
  if (timeout_us <= 0) timeout_us = rec_->default_timeout_us;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::microseconds(timeout_us);

  std::unique_lock<std::mutex> lock(rec_->mu);
  std::optional<Status> result;
  // wait_until + predicate: spurious wakeups re-enter the wait with the
  // same absolute deadline, so the timeout is never silently shortened.
  rec_->cv.wait_until(lock, deadline, [&] {
    result = MajorityDecision(*rec_);
    return result.has_value();
  });
  if (result.has_value()) return *result;
  return TimeoutStatus(rec_->txid, "not decided", start, timeout_us);
}

Status TxnHandle::WaitAllNodes(Micros timeout_us) {
  if (!submit_status_.ok()) return submit_status_;
  if (!rec_) return Status::InvalidArgument("invalid transaction handle");
  if (timeout_us <= 0) timeout_us = rec_->default_timeout_us;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::microseconds(timeout_us);

  std::unique_lock<std::mutex> lock(rec_->mu);
  bool all = rec_->cv.wait_until(lock, deadline, [&] {
    return rec_->decisions.size() >= rec_->peer_count;
  });
  if (!all) {
    return TimeoutStatus(rec_->txid, "not decided on all nodes", start,
                         timeout_us);
  }
  for (const auto& [node, st] : rec_->decisions) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

BlockNum TxnHandle::CommitBlock() const {
  if (!rec_) return 0;
  std::lock_guard<std::mutex> lock(rec_->mu);
  return rec_->decided_block;
}

std::map<std::string, Status> TxnHandle::NodeStatuses() const {
  if (!rec_) return {};
  std::lock_guard<std::mutex> lock(rec_->mu);
  return rec_->decisions;
}

// ---------------- PreparedStatement ----------------

Status PreparedStatement::BindCheck(const std::vector<Value>& params) const {
  if (!valid()) return Status::InvalidArgument("invalid prepared statement");
  return sql::CheckParamBinding(info_, params);
}

// ---------------- Session ----------------

Session::Session(Identity identity, std::shared_ptr<Transport> transport,
                 SessionOptions options)
    : identity_(std::move(identity)),
      transport_(std::move(transport)),
      options_(options) {
  subscription_ = transport_->Subscribe(
      [this](const std::string& peer, const TxnNotification& n) {
        OnDecision(peer, n);
      });
}

Session::~Session() { transport_->Unsubscribe(subscription_); }

std::shared_ptr<detail::TxnRecord> Session::RecordFor(
    const std::string& txid) {
  std::lock_guard<std::mutex> lock(mu_);
  return RecordForLocked(txid);
}

std::shared_ptr<detail::TxnRecord> Session::RecordForLocked(
    const std::string& txid, bool* created) {
  if (created != nullptr) *created = false;
  auto it = records_.find(txid);
  if (it != records_.end()) return it->second;

  // An explicit request for a retained-out txid re-arms full tracking. If a
  // live handle still co-owns the record, resurrect THAT record (callers
  // keep a consistent view) and immediately re-queue it for its next
  // retention drop — it already carries a majority decision, so no further
  // decision would ever queue it again. The FIFO entry goes too: left
  // stale, it would evict a future marker for this txid early. Rare path
  // (Track/Submit of a pruned txid), so the linear sweep is fine.
  auto p = pruned_.find(txid);
  if (p != pruned_.end()) {
    std::shared_ptr<detail::TxnRecord> rec = p->second.lock();
    pruned_.erase(p);
    pruned_fifo_.erase(
        std::remove(pruned_fifo_.begin(), pruned_fifo_.end(), txid),
        pruned_fifo_.end());
    if (rec != nullptr) {
      records_.emplace(txid, rec);
      BlockNum decided_block = 0;
      {
        std::lock_guard<std::mutex> rlock(rec->mu);
        decided_block = rec->decided_block;
      }
      decided_at_.emplace(decided_block, txid);
      return rec;
    }
  }

  auto rec = std::make_shared<detail::TxnRecord>();
  rec->txid = txid;
  rec->peer_count = transport_->peer_count();
  rec->default_timeout_us = options_.default_timeout_us;
  records_.emplace(txid, rec);
  if (created != nullptr) *created = true;
  return rec;
}

void Session::OnDecision(const std::string& peer, const TxnNotification& n) {
  const bool retention = options_.retain_decided_blocks > 0;
  std::shared_ptr<detail::TxnRecord> rec;
  bool record_tracked = true;

  // One mu_ acquisition covers the whole delivery: this path is already
  // globally serialized by the transport's subscriber lock, so the point
  // is fewer lock round-trips, not concurrency. Lock order mu_ -> rec->mu
  // is safe: no path acquires them in the opposite order.
  std::lock_guard<std::mutex> lock(mu_);
  if (retention) {
    if (n.block > latest_block_) latest_block_ = n.block;
    auto it = pruned_.find(n.txid);
    if (it != pruned_.end()) {
      // Straggler decision for a retained-out transaction. Never re-create
      // a record in records_ (a minority record could not reach majority
      // again and would leak forever) — but a live handle still co-owning
      // the record gets the decision, keeping WaitAllNodes()/NodeStatuses()
      // complete.
      rec = it->second.lock();
      if (rec == nullptr) return;
      record_tracked = false;
    }
  }
  if (rec == nullptr) {
    bool created = false;
    rec = RecordForLocked(n.txid, &created);
    // A record born from a notification normally reaches majority and is
    // retained out via decided_at_; track it so one that cannot (straggler
    // votes for a txid aged out of pruned-memory) is swept eventually.
    if (retention && created) observed_at_.emplace(n.block, n.txid);
  }

  bool newly_decided = false;
  BlockNum decided_block = 0;
  {
    std::lock_guard<std::mutex> rlock(rec->mu);
    rec->decisions[peer] = n.status;
    if (n.block > rec->decided_block) rec->decided_block = n.block;
    if (retention && record_tracked && !rec->retention_queued &&
        MajorityDecision(*rec).has_value()) {
      rec->retention_queued = true;
      newly_decided = true;
      decided_block = rec->decided_block;
    }
  }
  rec->cv.notify_all();

  if (!retention) return;
  if (newly_decided) decided_at_.emplace(decided_block, n.txid);
  PruneDecidedLocked();
}

void Session::PruneDecidedLocked() {
  const uint64_t retain = options_.retain_decided_blocks;
  auto retire = [&](const std::string& txid) {
    auto it = records_.find(txid);
    if (it == records_.end()) return;
    pruned_[txid] = it->second;  // weak: live handles keep receiving
    pruned_fifo_.push_back(txid);
    records_.erase(it);
  };

  while (!decided_at_.empty() &&
         decided_at_.begin()->first + retain <= latest_block_) {
    retire(decided_at_.begin()->second);
    decided_at_.erase(decided_at_.begin());
  }

  // Stale-minority sweep: a notification-created record that has not
  // reached majority within 8 retention windows never will (its peers'
  // earlier votes were dropped with the original record) — retire it too.
  const uint64_t grace = retain * 8 + 8;
  while (!observed_at_.empty() &&
         observed_at_.begin()->first + grace <= latest_block_) {
    const std::string txid = observed_at_.begin()->second;
    observed_at_.erase(observed_at_.begin());
    auto it = records_.find(txid);
    if (it != records_.end()) {
      bool queued = false;
      {
        std::lock_guard<std::mutex> rlock(it->second->mu);
        queued = it->second->retention_queued;
      }
      if (!queued) retire(txid);  // decided records are decided_at_'s job
    }
  }

  while (pruned_fifo_.size() > kPrunedMemory) {
    pruned_.erase(pruned_fifo_.front());  // no-op when re-armed meanwhile
    pruned_fifo_.pop_front();
  }
}

size_t Session::tracked_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

Result<Transaction> Session::MakeTransaction(const std::string& contract,
                                             std::vector<Value> args) {
  if (transport_->flow() == TransactionFlow::kExecuteOrderParallel) {
    auto height = transport_->Height();
    if (!height.ok()) return height.status();
    return Transaction::MakeExecuteOrderParallel(
        identity_, contract, std::move(args), height.value());
  }
  std::string id =
      identity_.name + "-" + std::to_string(counter_.fetch_add(1));
  return Transaction::MakeOrderThenExecute(identity_, std::move(id), contract,
                                           std::move(args));
}

TxnHandle Session::Submit(const std::string& contract,
                          std::vector<Value> args) {
  std::vector<Invocation> batch;
  batch.push_back(Invocation{contract, std::move(args)});
  return SubmitBatch(std::move(batch)).front();
}

std::vector<TxnHandle> Session::SubmitBatch(
    std::vector<Invocation> invocations) {
  std::vector<TxnHandle> handles;
  handles.reserve(invocations.size());
  if (invocations.empty()) return handles;

  const bool eop =
      transport_->flow() == TransactionFlow::kExecuteOrderParallel;

  // One height probe covers the whole batch (EOP snapshot basis).
  BlockNum height = 0;
  if (eop) {
    auto h = transport_->Height();
    if (!h.ok()) {
      for (size_t i = 0; i < invocations.size(); ++i) {
        handles.push_back(TxnHandle(nullptr, h.status()));
      }
      return handles;
    }
    height = h.value();
  }

  // Sign everything up front, then ship the batch as one frame.
  std::vector<Transaction> txs;
  txs.reserve(invocations.size());
  for (Invocation& inv : invocations) {
    if (eop) {
      txs.push_back(Transaction::MakeExecuteOrderParallel(
          identity_, inv.contract, std::move(inv.args), height));
    } else {
      std::string id =
          identity_.name + "-" + std::to_string(counter_.fetch_add(1));
      txs.push_back(Transaction::MakeOrderThenExecute(
          identity_, std::move(id), inv.contract, std::move(inv.args)));
    }
  }

  // Records exist before submission: a decision racing back immediately
  // still lands in the right record.
  std::vector<std::shared_ptr<detail::TxnRecord>> records;
  records.reserve(txs.size());
  for (const Transaction& tx : txs) records.push_back(RecordFor(tx.id()));

  auto statuses = transport_->Submit(txs);
  for (size_t i = 0; i < txs.size(); ++i) {
    Status st = statuses.ok() ? statuses.value()[i] : statuses.status();
    handles.push_back(TxnHandle(records[i], std::move(st)));
  }
  return handles;
}

TxnHandle Session::Track(const std::string& txid) {
  return TxnHandle(RecordFor(txid), Status::OK());
}

Result<PreparedStatement> Session::Prepare(const std::string& sql) {
  auto info = transport_->Prepare(identity_.name, sql);
  if (!info.ok()) return info.status();
  PreparedStatement stmt;
  stmt.sql_ = sql;
  stmt.info_ = std::move(info).value();
  return stmt;
}

Result<sql::ResultSet> Session::Query(const std::string& sql,
                                      const std::vector<Value>& params) {
  return transport_->Query(QueryRequest{identity_.name, sql, params, false});
}

Result<sql::ResultSet> Session::Query(const PreparedStatement& stmt,
                                      const std::vector<Value>& params) {
  BRDB_RETURN_NOT_OK(stmt.BindCheck(params));
  return transport_->Query(
      QueryRequest{identity_.name, stmt.sql(), params, false});
}

Result<sql::ResultSet> Session::ProvenanceQuery(
    const std::string& sql, const std::vector<Value>& params) {
  return transport_->Query(QueryRequest{identity_.name, sql, params, true});
}

Result<sql::ResultSet> Session::ProvenanceQuery(
    const PreparedStatement& stmt, const std::vector<Value>& params) {
  BRDB_RETURN_NOT_OK(stmt.BindCheck(params));
  return transport_->Query(
      QueryRequest{identity_.name, stmt.sql(), params, true});
}

Result<sql::ResultSet> Session::QueryOn(size_t peer, const std::string& sql,
                                        const std::vector<Value>& params) {
  return transport_->Query(QueryRequest{identity_.name, sql, params, false},
                           peer);
}

}  // namespace brdb
