#include "core/transport.h"

#include <algorithm>

namespace brdb {

// ---------------- PeerSelector ----------------

PeerSelector::PeerSelector(size_t peers, Micros cooldown_us)
    : peers_(peers), cooldown_us_(cooldown_us) {
  failed_at_ = std::make_unique<std::atomic<Micros>[]>(peers == 0 ? 1 : peers);
  for (size_t i = 0; i < peers_; ++i) failed_at_[i].store(0);
}

bool PeerSelector::Healthy(size_t peer) const {
  if (peer >= peers_) return false;
  Micros failed = failed_at_[peer].load(std::memory_order_acquire);
  if (failed == 0) return true;
  return RealClock::Shared()->NowMicros() - failed >= cooldown_us_;
}

size_t PeerSelector::Next() {
  if (peers_ == 0) return 0;
  for (size_t attempt = 0; attempt < peers_; ++attempt) {
    size_t peer = rr_.fetch_add(1, std::memory_order_relaxed) % peers_;
    if (Healthy(peer)) return peer;
  }
  // Everyone looks down: probe in plain round-robin order anyway.
  return rr_.fetch_add(1, std::memory_order_relaxed) % peers_;
}

void PeerSelector::ReportFailure(size_t peer) {
  if (peer >= peers_) return;
  failed_at_[peer].store(RealClock::Shared()->NowMicros(),
                         std::memory_order_release);
}

void PeerSelector::ReportSuccess(size_t peer) {
  if (peer >= peers_) return;
  failed_at_[peer].store(0, std::memory_order_release);
}

// ---------------- InProcessTransport ----------------

InProcessTransport::InProcessTransport(OrderingService* ordering,
                                       std::vector<DatabaseNode*> nodes)
    : ordering_(ordering),
      nodes_(std::move(nodes)),
      selector_(nodes_.size()) {
  node_subs_.reserve(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    node_subs_.push_back(nodes_[i]->Subscribe(
        [this, i](const TxnNotification& n) { OnNodeDecision(i, n); }));
  }
}

InProcessTransport::~InProcessTransport() {
  for (size_t i = 0; i < node_subs_.size(); ++i) {
    nodes_[i]->Unsubscribe(node_subs_[i]);
  }
}

std::string InProcessTransport::peer_name(size_t peer) const {
  return peer < nodes_.size() ? nodes_[peer]->name() : std::string();
}

TransactionFlow InProcessTransport::flow() const {
  return nodes_.empty() ? TransactionFlow::kOrderThenExecute
                        : nodes_[0]->config().flow;
}

Result<Frame> InProcessTransport::RoundTrip(const Frame& request,
                                            size_t peer) {
  // Client → server leg.
  std::string req_bytes = request.Encode();
  counters_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_sent.fetch_add(req_bytes.size(),
                                 std::memory_order_relaxed);
  auto received = Frame::Decode(req_bytes);
  if (!received.ok()) return received.status();

  Frame response = ServerDispatch(received.value(), peer);
  response.seq = request.seq;

  // Server → client leg.
  std::string resp_bytes = response.Encode();
  counters_.frames_received.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_received.fetch_add(resp_bytes.size(),
                                     std::memory_order_relaxed);
  return Frame::Decode(resp_bytes);
}

Frame DispatchRequestFrame(const Frame& request, DatabaseNode* node,
                           OrderingService* ordering, TransactionFlow flow) {
  auto status_response = [](const Status& st) {
    Frame f;
    f.kind = FrameKind::kStatusResponse;
    f.body = StatusResponseBody{st, 0}.Encode();
    return f;
  };
  const bool node_up = node != nullptr && node->running();

  switch (request.kind) {
    case FrameKind::kSubmit: {
      auto body = SubmitRequestBody::Decode(request.body);
      SubmitResponseBody resp;
      if (!body.ok()) {
        // Same body kind on every submit response, error or not — the
        // client side always decodes a SubmitResponseBody.
        resp.status = body.status();
        Frame f;
        f.kind = FrameKind::kStatusResponse;
        f.body = resp.Encode();
        return f;
      }
      const bool eop = flow == TransactionFlow::kExecuteOrderParallel;
      if (eop && !node_up) {
        resp.status = Status::Unavailable("peer not running");
      } else if (!eop && ordering == nullptr) {
        resp.status = Status::Unavailable("ordering service unreachable");
      } else {
        for (const std::string& tx_bytes : body.value().encoded_txs) {
          auto tx = Transaction::Decode(tx_bytes);
          if (!tx.ok()) {
            resp.tx_statuses.push_back(tx.status());
            continue;
          }
          resp.tx_statuses.push_back(
              eop ? node->SubmitTransaction(tx.value())
                  : ordering->SubmitTransaction(tx.value()));
        }
      }
      Frame f;
      f.kind = FrameKind::kStatusResponse;
      f.body = resp.Encode();
      return f;
    }
    case FrameKind::kQuery: {
      auto body = QueryRequestBody::Decode(request.body);
      ResultResponseBody resp;
      if (!body.ok()) {
        resp.status = body.status();
      } else if (!node_up) {
        resp.status = Status::Unavailable("peer not running");
      } else {
        const QueryRequestBody& q = body.value();
        auto r = q.provenance ? node->ProvenanceQuery(q.user, q.sql, q.params)
                              : node->Query(q.user, q.sql, q.params);
        if (r.ok()) {
          resp.columns = std::move(r.value().columns);
          resp.rows = std::move(r.value().rows);
          resp.affected = r.value().affected;
        } else {
          resp.status = r.status();
        }
      }
      Frame f;
      f.kind = FrameKind::kResultResponse;
      f.body = resp.Encode();
      return f;
    }
    case FrameKind::kPrepare: {
      auto body = PrepareRequestBody::Decode(request.body);
      PrepareResponseBody resp;
      if (!body.ok()) {
        resp.status = body.status();
      } else if (!node_up) {
        resp.status = Status::Unavailable("peer not running");
      } else {
        auto info = node->PrepareQuery(body.value().user, body.value().sql);
        if (info.ok()) {
          resp.param_count = static_cast<uint32_t>(info.value().param_count);
          for (ValueType t : info.value().param_types) {
            resp.param_types.push_back(static_cast<uint8_t>(t));
          }
          resp.statement_type = static_cast<uint8_t>(info.value().type);
        } else {
          resp.status = info.status();
        }
      }
      Frame f;
      f.kind = FrameKind::kPrepareResponse;
      f.body = resp.Encode();
      return f;
    }
    case FrameKind::kHeight: {
      Frame f;
      f.kind = FrameKind::kHeightResponse;
      if (!node_up) {
        f.body =
            StatusResponseBody{Status::Unavailable("peer not running"), 0}
                .Encode();
      } else {
        f.body = StatusResponseBody{Status::OK(), node->Height()}.Encode();
      }
      return f;
    }
    case FrameKind::kFetchBlocks: {
      // §3.6 catch-up: serve a bounded run of committed blocks from the
      // local store (also answered by the orderer — see network/cluster.cc).
      auto body = FetchBlocksBody::Decode(request.body);
      FetchBlocksResponseBody resp;
      if (!body.ok()) {
        resp.status = body.status();
      } else if (node == nullptr) {
        resp.status = Status::Unavailable("peer not running");
      } else {
        // Deliberately NOT gated on node->running(): the durable store is
        // valid from construction, and the orderer's restart catch-up may
        // fetch before this node finished its own startup.
        BlockNum height = node->block_store()->Height();
        uint32_t count = std::min<uint32_t>(body.value().max_count,
                                            kMaxFetchBlocksPerResponse);
        for (BlockNum h = body.value().from_height;
             h <= height && resp.encoded_blocks.size() < count; ++h) {
          auto block = node->block_store()->Get(h);
          if (!block.ok()) {
            resp.status = block.status();
            resp.encoded_blocks.clear();
            break;
          }
          resp.encoded_blocks.push_back(block.value().Encode());
        }
      }
      Frame f;
      f.kind = FrameKind::kFetchBlocksResponse;
      f.body = resp.Encode();
      return f;
    }
    default:
      return status_response(
          Status::InvalidArgument("unexpected frame kind on request path"));
  }
}

Frame InProcessTransport::ServerDispatch(const Frame& request, size_t peer) {
  DatabaseNode* node = peer < nodes_.size() ? nodes_[peer] : nullptr;
  return DispatchRequestFrame(request, node, ordering_, flow());
}

Result<std::vector<Status>> InProcessTransport::Submit(
    const std::vector<Transaction>& txs) {
  Frame req;
  req.kind = FrameKind::kSubmit;
  req.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  SubmitRequestBody body;
  body.encoded_txs.reserve(txs.size());
  for (const Transaction& tx : txs) body.encoded_txs.push_back(tx.Encode());
  req.body = body.Encode();

  const bool eop = flow() == TransactionFlow::kExecuteOrderParallel;
  const size_t attempts = eop ? std::max<size_t>(nodes_.size(), 1) : 1;
  Status last = Status::Unavailable("no peers");
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    size_t peer = eop ? selector_.Next() : 0;
    auto resp = RoundTrip(req, peer);
    if (!resp.ok()) return resp.status();
    auto decoded = SubmitResponseBody::Decode(resp.value().body);
    if (!decoded.ok()) return decoded.status();
    if (decoded.value().status.ok()) {
      selector_.ReportSuccess(peer);
      if (decoded.value().tx_statuses.size() != txs.size()) {
        return Status::Internal("submit response arity mismatch");
      }
      return std::move(decoded).value().tx_statuses;
    }
    last = decoded.value().status;
    if (eop) selector_.ReportFailure(peer);
  }
  return last;
}

Result<BlockNum> InProcessTransport::Height() {
  Frame req;
  req.kind = FrameKind::kHeight;
  req.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Status last = Status::Unavailable("no peers");
  for (size_t attempt = 0; attempt < std::max<size_t>(nodes_.size(), 1);
       ++attempt) {
    size_t peer = selector_.Next();
    auto resp = RoundTrip(req, peer);
    if (!resp.ok()) return resp.status();
    auto decoded = StatusResponseBody::Decode(resp.value().body);
    if (!decoded.ok()) return decoded.status();
    if (decoded.value().status.ok()) {
      selector_.ReportSuccess(peer);
      return static_cast<BlockNum>(decoded.value().height);
    }
    last = decoded.value().status;
    selector_.ReportFailure(peer);
  }
  return last;
}

Result<sql::ResultSet> InProcessTransport::Query(const QueryRequest& req,
                                                 size_t pin_peer) {
  Frame frame;
  frame.kind = FrameKind::kQuery;
  frame.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  frame.body =
      QueryRequestBody{req.user, req.sql, req.params, req.provenance}
          .Encode();

  const bool pinned = pin_peer != kAnyPeer;
  const size_t attempts = pinned ? 1 : std::max<size_t>(nodes_.size(), 1);
  Status last = Status::Unavailable("no peers");
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    size_t peer = pinned ? pin_peer : selector_.Next();
    auto resp = RoundTrip(frame, peer);
    if (!resp.ok()) return resp.status();
    auto decoded = ResultResponseBody::Decode(resp.value().body);
    if (!decoded.ok()) return decoded.status();
    // Unavailable is a transport-level answer ("peer down"): fail over.
    // Every other status is the peer's real answer and is returned as-is.
    if (decoded.value().status.code() == StatusCode::kUnavailable &&
        !pinned) {
      selector_.ReportFailure(peer);
      last = decoded.value().status;
      continue;
    }
    if (!pinned) selector_.ReportSuccess(peer);
    if (!decoded.value().status.ok()) return decoded.value().status;
    sql::ResultSet rs;
    rs.columns = std::move(decoded.value().columns);
    rs.rows = std::move(decoded.value().rows);
    rs.affected = decoded.value().affected;
    return rs;
  }
  return last;
}

Result<sql::PreparedInfo> InProcessTransport::Prepare(const std::string& user,
                                                      const std::string& sql) {
  Frame frame;
  frame.kind = FrameKind::kPrepare;
  frame.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  frame.body = PrepareRequestBody{user, sql}.Encode();

  Status last = Status::Unavailable("no peers");
  for (size_t attempt = 0; attempt < std::max<size_t>(nodes_.size(), 1);
       ++attempt) {
    size_t peer = selector_.Next();
    auto resp = RoundTrip(frame, peer);
    if (!resp.ok()) return resp.status();
    auto decoded = PrepareResponseBody::Decode(resp.value().body);
    if (!decoded.ok()) return decoded.status();
    if (decoded.value().status.code() == StatusCode::kUnavailable) {
      selector_.ReportFailure(peer);
      last = decoded.value().status;
      continue;
    }
    selector_.ReportSuccess(peer);
    if (!decoded.value().status.ok()) return decoded.value().status;
    // Never trust wire bytes as enum values (cf. Status::FromCode): an
    // out-of-range param type degrades to "unknown" (binds freely), an
    // out-of-range statement type makes the response unusable.
    if (decoded.value().statement_type >
        static_cast<uint8_t>(sql::StatementType::kDropTable)) {
      return Status::Corruption("prepare response: invalid statement type");
    }
    sql::PreparedInfo info;
    info.param_count = static_cast<int>(decoded.value().param_count);
    for (uint8_t t : decoded.value().param_types) {
      info.param_types.push_back(t > static_cast<uint8_t>(ValueType::kText)
                                     ? ValueType::kNull
                                     : static_cast<ValueType>(t));
    }
    info.type = static_cast<sql::StatementType>(
        decoded.value().statement_type);
    return info;
  }
  return last;
}

uint64_t InProcessTransport::Subscribe(DecisionFn fn) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  uint64_t id = next_sub_id_++;
  subscribers_.emplace(id, std::move(fn));
  return id;
}

void InProcessTransport::Unsubscribe(uint64_t id) {
  std::lock_guard<std::mutex> lock(subs_mu_);
  subscribers_.erase(id);
}

void InProcessTransport::OnNodeDecision(size_t peer,
                                        const TxnNotification& n) {
  // Even events cross the boundary as frames: encode, "receive", decode.
  DecisionEventBody body;
  body.peer = peer_name(peer);
  body.txid = n.txid;
  body.status = n.status;
  body.block = n.block;
  Frame event;
  event.kind = FrameKind::kDecisionEvent;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.body = body.Encode();

  std::string bytes = event.Encode();
  counters_.frames_received.fetch_add(1, std::memory_order_relaxed);
  counters_.bytes_received.fetch_add(bytes.size(), std::memory_order_relaxed);
  auto received = Frame::Decode(bytes);
  if (!received.ok()) return;
  auto decoded = DecisionEventBody::Decode(received.value().body);
  if (!decoded.ok()) return;

  // Deliver under subs_mu_ so Unsubscribe() (Session destruction)
  // synchronizes with in-flight events — see DatabaseNode::Notify.
  TxnNotification out{decoded.value().txid, decoded.value().status,
                      decoded.value().block};
  std::lock_guard<std::mutex> lock(subs_mu_);
  for (const auto& [id, fn] : subscribers_) fn(decoded.value().peer, out);
}

}  // namespace brdb
