#include "crypto/sig_verifier.h"

#include <algorithm>

namespace brdb {

SignatureVerifier::SignatureVerifier(ThreadPool* pool, size_t cache_capacity)
    : pool_(pool), capacity_(cache_capacity == 0 ? 1 : cache_capacity) {}

std::string SignatureVerifier::KeyFor(const Transaction& tx) {
  return tx.SignedPayload() + tx.signature().Serialize();
}

bool SignatureVerifier::WasVerified(const Transaction& tx) const {
  std::string key = KeyFor(tx);
  std::lock_guard<std::mutex> lock(mu_);
  return verified_.count(key) > 0;
}

void SignatureVerifier::MarkVerified(const Transaction& tx) {
  std::string key = KeyFor(tx);
  std::lock_guard<std::mutex> lock(mu_);
  if (!verified_.insert(key).second) return;
  fifo_.push_back(std::move(key));
  while (fifo_.size() > capacity_) {
    verified_.erase(fifo_.front());
    fifo_.pop_front();
  }
}

std::vector<Status> SignatureVerifier::VerifyTransactions(
    const CertificateRegistry& registry,
    const std::vector<const Transaction*>& txs) {
  std::vector<Status> results(txs.size(), Status::OK());
  if (txs.empty()) return results;

  // One chunk per would-be worker (pool threads + the caller), so the
  // per-task overhead amortizes over many verifications.
  const size_t workers = pool_->num_threads() + 1;
  const size_t chunk = std::max<size_t>(1, (txs.size() + workers - 1) / workers);
  std::vector<std::function<void()>> tasks;
  for (size_t start = 0; start < txs.size(); start += chunk) {
    size_t end = std::min(start + chunk, txs.size());
    tasks.push_back([this, &registry, &txs, &results, start, end] {
      for (size_t i = start; i < end; ++i) {
        const Transaction& tx = *txs[i];
        if (WasVerified(tx)) continue;  // results[i] stays OK
        Status st = tx.Authenticate(registry);
        if (st.ok()) {
          MarkVerified(tx);
        } else {
          results[i] = st;
        }
      }
    });
  }
  pool_->RunBatch(std::move(tasks));
  return results;
}

}  // namespace brdb
