#include "crypto/identity.h"

namespace brdb {

const char* PrincipalRoleToString(PrincipalRole role) {
  switch (role) {
    case PrincipalRole::kClient:
      return "client";
    case PrincipalRole::kAdmin:
      return "admin";
    case PrincipalRole::kPeer:
      return "peer";
    case PrincipalRole::kOrderer:
      return "orderer";
  }
  return "?";
}

Identity Identity::Create(const std::string& organization,
                          const std::string& name, PrincipalRole role) {
  Identity id;
  id.name = name;
  id.organization = organization;
  id.role = role;
  id.keys = Schnorr::DeriveKeyPair(organization + "/" + name + "/" +
                                   PrincipalRoleToString(role));
  return id;
}

void CertificateRegistry::Register(const std::string& name,
                                   const std::string& organization,
                                   PrincipalRole role, uint64_t public_key) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[name] = Entry{organization, role, public_key};
}

Status CertificateRegistry::Remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.erase(name) == 0) {
    return Status::NotFound("no certificate for user " + name);
  }
  return Status::OK();
}

Result<uint64_t> CertificateRegistry::PublicKeyOf(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no certificate for user " + name);
  }
  return it->second.public_key;
}

Result<PrincipalRole> CertificateRegistry::RoleOf(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no certificate for user " + name);
  }
  return it->second.role;
}

Result<std::string> CertificateRegistry::OrganizationOf(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no certificate for user " + name);
  }
  return it->second.organization;
}

Status CertificateRegistry::VerifySignature(const std::string& name,
                                            const std::string& message,
                                            const Signature& sig) const {
  auto key = PublicKeyOf(name);
  if (!key.ok()) return key.status();
  if (!Schnorr::Verify(key.value(), message, sig)) {
    return Status::PermissionDenied("signature verification failed for user " +
                                    name);
  }
  return Status::OK();
}

size_t CertificateRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace brdb
