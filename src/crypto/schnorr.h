// Schnorr signatures over the multiplicative group of a 61-bit prime field.
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper relies on a production PKI
// with ECDSA/X.509. This module implements the genuine Schnorr scheme —
// key generation, signing with a deterministic per-message nonce (RFC
// 6979-style derivation via HMAC), and verification — but over a toy-sized
// group (p = 2^61 - 1 would not be prime for our purposes; we use a safe
// 61-bit prime with a large prime-order subgroup). The scheme exercises all
// the code paths the system needs (per-transaction client signatures,
// orderer block signatures, tamper detection on forged bytes) while staying
// dependency-free and fast. It is NOT cryptographically strong at this key
// size and must not be used outside this reproduction.
#ifndef BRDB_CRYPTO_SCHNORR_H_
#define BRDB_CRYPTO_SCHNORR_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace brdb {

/// A signing keypair. The public key is what gets registered in pgcerts.
struct KeyPair {
  uint64_t private_key = 0;  ///< x in [1, q)
  uint64_t public_key = 0;   ///< y = g^x mod p
};

/// A Schnorr signature (e, s).
struct Signature {
  uint64_t e = 0;
  uint64_t s = 0;

  /// 32-hex-char serialization (16 per component) for wire/ledger storage.
  std::string Serialize() const;
  static Result<Signature> Deserialize(const std::string& data);

  bool operator==(const Signature& other) const {
    return e == other.e && s == other.s;
  }
};

class Schnorr {
 public:
  /// Deterministically derive a keypair from a seed string (e.g. the user
  /// name plus an organization secret). Deterministic derivation keeps
  /// multi-node tests reproducible.
  static KeyPair DeriveKeyPair(const std::string& seed);

  /// Sign `message` with `key`. The nonce is derived deterministically from
  /// (private key, message) so signing is reproducible and never reuses a
  /// nonce across distinct messages.
  static Signature Sign(const KeyPair& key, const std::string& message);

  /// Verify `sig` over `message` against `public_key`.
  static bool Verify(uint64_t public_key, const std::string& message,
                     const Signature& sig);

  // Group parameters (exposed for tests).
  static constexpr uint64_t kP = 2305843009213693951ULL;  // 2^61 - 1, prime
  static constexpr uint64_t kQ = kP - 1;                  // group order used
  static constexpr uint64_t kG = 3;                       // generator

 private:
  static uint64_t MulMod(uint64_t a, uint64_t b);
  static uint64_t PowMod(uint64_t base, uint64_t exp);
  static uint64_t HashToScalar(const std::string& data);
};

}  // namespace brdb

#endif  // BRDB_CRYPTO_SCHNORR_H_
