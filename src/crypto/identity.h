// Identities for the permissioned network: clients, admins, database peers
// and orderer nodes all hold a keypair; public keys are exchanged at network
// bootstrap (paper §3.7) and stored per-node in the pgcerts system table.
#ifndef BRDB_CRYPTO_IDENTITY_H_
#define BRDB_CRYPTO_IDENTITY_H_

#include <map>
#include <mutex>
#include <string>

#include "common/status.h"
#include "crypto/schnorr.h"

namespace brdb {

/// Role of a network principal, mirroring the paper's actors.
enum class PrincipalRole {
  kClient,
  kAdmin,    ///< organization administrator (can deploy contracts, add users)
  kPeer,     ///< database node identity
  kOrderer,  ///< ordering-service node identity
};

const char* PrincipalRoleToString(PrincipalRole role);

/// A named principal with its keypair and owning organization.
struct Identity {
  std::string name;          ///< unique network-wide user name
  std::string organization;  ///< owning org
  PrincipalRole role = PrincipalRole::kClient;
  KeyPair keys;

  /// Deterministically create an identity from (org, name, role).
  static Identity Create(const std::string& organization,
                         const std::string& name, PrincipalRole role);

  Signature Sign(const std::string& message) const {
    return Schnorr::Sign(keys, message);
  }
};

/// The per-node registry of known public keys (the in-memory face of
/// pgcerts; the durable copy lives in the system table). Thread-safe.
class CertificateRegistry {
 public:
  /// Register or replace a principal's public key.
  void Register(const std::string& name, const std::string& organization,
                PrincipalRole role, uint64_t public_key);

  Status Remove(const std::string& name);

  /// Look up the public key for a user; NotFound when unregistered.
  Result<uint64_t> PublicKeyOf(const std::string& name) const;

  Result<PrincipalRole> RoleOf(const std::string& name) const;
  Result<std::string> OrganizationOf(const std::string& name) const;

  /// Verify `sig` over `message` as produced by `name`.
  Status VerifySignature(const std::string& name, const std::string& message,
                         const Signature& sig) const;

  size_t size() const;

 private:
  struct Entry {
    std::string organization;
    PrincipalRole role;
    uint64_t public_key;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace brdb

#endif  // BRDB_CRYPTO_IDENTITY_H_
