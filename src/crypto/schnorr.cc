#include "crypto/schnorr.h"

#include <cstring>

#include "common/hex.h"
#include "crypto/sha256.h"

namespace brdb {

uint64_t Schnorr::MulMod(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % kP);
}

uint64_t Schnorr::PowMod(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  base %= kP;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base);
    base = MulMod(base, base);
    exp >>= 1;
  }
  return result;
}

uint64_t Schnorr::HashToScalar(const std::string& data) {
  std::string digest = Sha256::Hash(data);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(digest[i]);
  }
  // Scalars live in [1, q).
  return v % (kQ - 1) + 1;
}

KeyPair Schnorr::DeriveKeyPair(const std::string& seed) {
  KeyPair kp;
  kp.private_key = HashToScalar("brdb-key-derivation:" + seed);
  kp.public_key = PowMod(kG, kp.private_key);
  return kp;
}

Signature Schnorr::Sign(const KeyPair& key, const std::string& message) {
  // Deterministic nonce (RFC 6979 in spirit): k = H(HMAC(priv, msg)).
  std::string priv_bytes(reinterpret_cast<const char*>(&key.private_key), 8);
  uint64_t k = HashToScalar(HmacSha256(priv_bytes, message));
  uint64_t r = PowMod(kG, k);

  std::string r_bytes(reinterpret_cast<const char*>(&r), 8);
  uint64_t e = HashToScalar(r_bytes + message);

  // s = k + e * x mod q  (group exponent arithmetic).
  unsigned __int128 s128 =
      (static_cast<unsigned __int128>(e) * key.private_key + k) % kQ;
  Signature sig;
  sig.e = e;
  sig.s = static_cast<uint64_t>(s128);
  return sig;
}

bool Schnorr::Verify(uint64_t public_key, const std::string& message,
                     const Signature& sig) {
  if (public_key == 0 || sig.e == 0) return false;
  // R' = g^s * y^(-e) = g^s * y^(q - e) mod p.
  uint64_t gs = PowMod(kG, sig.s % kQ);
  uint64_t y_neg_e = PowMod(public_key, kQ - (sig.e % kQ));
  uint64_t r_prime = MulMod(gs, y_neg_e);

  std::string r_bytes(reinterpret_cast<const char*>(&r_prime), 8);
  return HashToScalar(r_bytes + message) == sig.e;
}

std::string Signature::Serialize() const {
  char buf[16];
  std::memcpy(buf, &e, 8);
  std::memcpy(buf + 8, &s, 8);
  return HexEncode(std::string(buf, 16));
}

Result<Signature> Signature::Deserialize(const std::string& data) {
  auto bytes = HexDecode(data);
  if (!bytes.ok()) return bytes.status();
  if (bytes.value().size() != 16) {
    return Status::InvalidArgument("signature must encode 16 bytes");
  }
  Signature sig;
  std::memcpy(&sig.e, bytes.value().data(), 8);
  std::memcpy(&sig.s, bytes.value().data() + 8, 8);
  return sig;
}

}  // namespace brdb
