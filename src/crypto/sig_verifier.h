// SignatureVerifier: batched, thread-pool-parallel transaction signature
// verification with a bounded cache of already-verified transaction ids.
//
// The block processor must not pay one serial Schnorr verification per
// transaction on the commit path: a block's signatures are independent, so
// they verify concurrently before execution starts. The cache removes the
// repeat verification a transaction would otherwise get on every path it
// crosses (client submission, peer forward, block delivery) — a signature
// over an id-matched payload never changes, so one successful verification
// is good for the transaction's lifetime.
#ifndef BRDB_CRYPTO_SIG_VERIFIER_H_
#define BRDB_CRYPTO_SIG_VERIFIER_H_

#include <deque>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "crypto/identity.h"
#include "wire/transaction.h"

namespace brdb {

class SignatureVerifier {
 public:
  /// `pool` provides the batch parallelism (the node's executor pool; the
  /// calling thread participates, so a saturated pool is safe).
  explicit SignatureVerifier(ThreadPool* pool, size_t cache_capacity = 65536);

  /// True when this exact transaction content + signature was already
  /// verified on some path. The cache key binds the signed payload digest
  /// AND the signature — never the transaction id alone: order-then-execute
  /// ids are arbitrary client-chosen strings, so an id-keyed cache would
  /// let a forged transaction reusing a verified id skip authentication.
  bool WasVerified(const Transaction& tx) const;

  /// Record a successful verification (bounded FIFO cache).
  void MarkVerified(const Transaction& tx);

  /// Verify all `txs` concurrently against `registry`. Per-transaction
  /// statuses come back in input order; successes are cached, and cached
  /// entries skip the crypto entirely. NotFound means the user is not in
  /// the bootstrap registry (the caller's pgcerts fallback applies).
  std::vector<Status> VerifyTransactions(
      const CertificateRegistry& registry,
      const std::vector<const Transaction*>& txs);

 private:
  /// SignedPayload (a digest of id, user, contract, args, height) plus the
  /// signature bytes: a hit vouches for this exact signed content.
  static std::string KeyFor(const Transaction& tx);

  ThreadPool* pool_;
  size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_set<std::string> verified_;
  std::deque<std::string> fifo_;
};

}  // namespace brdb

#endif  // BRDB_CRYPTO_SIG_VERIFIER_H_
