#include "crypto/merkle.h"

#include "crypto/sha256.h"

namespace brdb {

// Domain separation between leaves and inner nodes prevents second-preimage
// tricks where an inner node is reinterpreted as a leaf.
std::string MerkleTree::HashLeaf(const std::string& data) {
  return Sha256::Hash(std::string(1, '\x00') + data);
}

std::string MerkleTree::HashInner(const std::string& left,
                                  const std::string& right) {
  return Sha256::Hash(std::string(1, '\x01') + left + right);
}

MerkleTree::MerkleTree(const std::vector<std::string>& leaves)
    : leaf_count_(leaves.size()) {
  std::vector<std::string> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(HashLeaf(leaf));
  if (level.empty()) level.push_back(Sha256::Hash(""));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<std::string> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      if (i + 1 < prev.size()) {
        next.push_back(HashInner(prev[i], prev[i + 1]));
      } else {
        // Odd node is promoted by pairing with itself (Bitcoin-style).
        next.push_back(HashInner(prev[i], prev[i]));
      }
    }
    levels_.push_back(std::move(next));
  }
}

Result<MerkleProof> MerkleTree::Prove(size_t index) const {
  if (index >= leaf_count_) {
    return Status::InvalidArgument("merkle proof index out of range");
  }
  MerkleProof proof;
  size_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& nodes = levels_[lvl];
    size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling >= nodes.size()) sibling = pos;  // odd promotion pairs self
    proof.push_back({nodes[sibling], sibling < pos});
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(const std::string& leaf, const MerkleProof& proof,
                        const std::string& root) {
  std::string digest = HashLeaf(leaf);
  for (const auto& step : proof) {
    digest = step.sibling_on_left ? HashInner(step.sibling, digest)
                                  : HashInner(digest, step.sibling);
  }
  return digest == root;
}

}  // namespace brdb
