// SHA-256 (FIPS 180-4) implemented from scratch. Used for transaction ids,
// block hash chaining, write-set checkpoints and as the hash inside HMAC,
// Merkle trees and Schnorr signatures.
#ifndef BRDB_CRYPTO_SHA256_H_
#define BRDB_CRYPTO_SHA256_H_

#include <cstdint>
#include <string>

namespace brdb {

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  /// Absorb more input.
  void Update(const void* data, size_t len);
  void Update(const std::string& data) { Update(data.data(), data.size()); }

  /// Finalize and return the 32-byte digest. The context must not be used
  /// again afterwards.
  std::string Finish();

  /// One-shot convenience.
  static std::string Hash(const std::string& data);

  /// One-shot digest rendered as lower-case hex (64 chars).
  static std::string HashHex(const std::string& data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t bit_count_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// HMAC-SHA-256 per RFC 2104.
std::string HmacSha256(const std::string& key, const std::string& message);

}  // namespace brdb

#endif  // BRDB_CRYPTO_SHA256_H_
