// Binary Merkle tree over SHA-256. Used by the checkpoint manager to hash a
// block's write-set (paper §3.3.4) and to produce membership proofs that let
// a light client verify a single row change against a checkpoint hash.
#ifndef BRDB_CRYPTO_MERKLE_H_
#define BRDB_CRYPTO_MERKLE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace brdb {

/// One step of a Merkle audit path: sibling digest + which side it is on.
struct MerkleProofStep {
  std::string sibling;  ///< 32-byte digest
  bool sibling_on_left = false;
};

using MerkleProof = std::vector<MerkleProofStep>;

class MerkleTree {
 public:
  /// Builds the tree over the given leaves (arbitrary byte strings; they are
  /// hashed with a leaf-domain prefix first). An empty leaf set yields the
  /// hash of the empty string as root.
  explicit MerkleTree(const std::vector<std::string>& leaves);

  /// 32-byte root digest.
  const std::string& Root() const { return levels_.back().front(); }

  size_t leaf_count() const { return leaf_count_; }

  /// Audit path for leaf `index`.
  Result<MerkleProof> Prove(size_t index) const;

  /// Verify that `leaf` is at some position under `root` given `proof`.
  static bool Verify(const std::string& leaf, const MerkleProof& proof,
                     const std::string& root);

 private:
  static std::string HashLeaf(const std::string& data);
  static std::string HashInner(const std::string& left,
                               const std::string& right);

  size_t leaf_count_;
  // levels_[0] = leaf digests, levels_.back() = {root}.
  std::vector<std::vector<std::string>> levels_;
};

}  // namespace brdb

#endif  // BRDB_CRYPTO_MERKLE_H_
