// Ordering service interface (paper §3.1, §4.4): consensus is pluggable and
// agnostic to the database. Implementations provided:
//   * SoloOrderer            — single sequencer (development / baselines)
//   * KafkaOrderingService   — N orderer front-ends over a shared FIFO
//                              topic with time-to-cut messages (CFT, §4.4)
//   * RaftOrderingService    — leader-based log replication with majority
//                              quorum and failover (CFT)
//   * PbftOrderingService    — PBFT three-phase commit (BFT), reproducing
//                              the O(n²) message cost of Fig 8(b)
//
// Blocks are cut by size or timeout, chained by hash, signed by the
// assembling orderer(s) and delivered to peer endpoints over the simulated
// network. Peers' checkpoint votes (§3.3.4) ride in the next block.
#ifndef BRDB_CONSENSUS_ORDERING_SERVICE_H_
#define BRDB_CONSENSUS_ORDERING_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "crypto/identity.h"
#include "ledger/block_store.h"
#include "network/sim_network.h"
#include "wire/block.h"
#include "wire/transaction.h"

namespace brdb {

// Network message types used by the ordering layer.
inline constexpr const char* kMsgTx = "tx";
inline constexpr const char* kMsgVote = "vote";
inline constexpr const char* kMsgBlock = "block";
inline constexpr const char* kMsgFetchBlock = "fetch_block";

struct OrdererConfig {
  size_t block_size = 100;             ///< max transactions per block
  Micros block_timeout_us = 1000000;   ///< cut timer (paper used 1 s)
  Micros tick_us = 500;                ///< cutter poll period
};

class OrderingService {
 public:
  virtual ~OrderingService() = default;

  /// Submit a transaction for ordering (load-balanced across orderer nodes
  /// by implementations with more than one).
  virtual Status SubmitTransaction(const Transaction& tx) = 0;

  /// Submit a peer's checkpoint vote; included in a subsequent block.
  virtual void SubmitCheckpointVote(const CheckpointVote& vote) = 0;

  /// Register a peer endpoint (on the simulated network) that should
  /// receive every block.
  virtual void ConnectPeer(const std::string& endpoint) = 0;

  virtual void Start() = 0;
  virtual void Stop() = 0;

  /// Chaos hook: pause/resume block formation ("crash-orderer"). While
  /// paused, submissions still enqueue — resuming drains the backlog, so
  /// recovery time is measurable. Default: unsupported no-op.
  virtual void Pause(bool /*paused*/) {}

  virtual BlockNum Height() const = 0;

  /// Retransmission path for recovering peers (§3.6).
  virtual Result<Block> GetBlock(BlockNum number) const = 0;

  /// Adopt an existing chain before Start() (whole-network restart over
  /// durable peer ledgers): without this, a fresh orderer would number its
  /// first block 1 and every peer would drop it as a duplicate. Copies the
  /// missing suffix of `source` into the orderer's own store so assembly
  /// and §3.6 retransmission continue the chain.
  virtual Status SeedChain(const BlockStore& source) = 0;

  /// Identities of the orderer nodes (for registry bootstrap).
  virtual std::vector<Identity> OrdererIdentities() const = 0;
};

/// Accumulates pending transactions/votes and decides when to cut a block
/// (size reached or timeout since the first pending transaction).
class BlockCutter {
 public:
  BlockCutter(size_t block_size, Micros timeout_us)
      : block_size_(block_size), timeout_us_(timeout_us) {}

  void Add(Transaction tx) {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) {
      first_pending_at_ = RealClock::Shared()->NowMicros();
    }
    pending_.push_back(std::move(tx));
  }

  void AddVote(CheckpointVote vote) {
    std::lock_guard<std::mutex> lock(mu_);
    votes_.push_back(std::move(vote));
  }

  bool ShouldCut() const {
    std::lock_guard<std::mutex> lock(mu_);
    // Checkpoint votes never trigger a cut on their own: they piggyback on
    // the next transaction block (paper §3.3.4, "state change hashes are
    // added in the next block"). A vote-only cut would itself produce new
    // votes and melt down into an empty-block storm.
    if (pending_.empty()) return false;
    if (pending_.size() >= block_size_) return true;
    Micros now = RealClock::Shared()->NowMicros();
    return now - first_pending_at_ >= timeout_us_;
  }

  bool Empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.empty() && votes_.empty();
  }

  /// Remove and return up to block_size transactions plus all votes.
  std::pair<std::vector<Transaction>, std::vector<CheckpointVote>> Cut() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Transaction> txns;
    size_t n = std::min(pending_.size(), block_size_);
    for (size_t i = 0; i < n; ++i) {
      txns.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    if (!pending_.empty()) {
      first_pending_at_ = RealClock::Shared()->NowMicros();
    }
    std::vector<CheckpointVote> votes = std::move(votes_);
    votes_.clear();
    return {std::move(txns), std::move(votes)};
  }

 private:
  size_t block_size_;
  Micros timeout_us_;
  mutable std::mutex mu_;
  std::deque<Transaction> pending_;
  std::vector<CheckpointVote> votes_;
  Micros first_pending_at_ = 0;
};

/// Shared plumbing for the concrete services: block assembly with hash
/// chaining, the in-orderer block store, and delivery to peer endpoints.
class OrderingCore : public OrderingService {
 public:
  OrderingCore(OrdererConfig config, SimNetwork* net)
      : config_(config), net_(net) {}

  void ConnectPeer(const std::string& endpoint) override {
    std::lock_guard<std::mutex> lock(peers_mu_);
    peers_.push_back(endpoint);
  }

  BlockNum Height() const override { return store_.Height(); }

  Result<Block> GetBlock(BlockNum number) const override {
    return store_.Get(number);
  }

  Status SeedChain(const BlockStore& source) override {
    for (BlockNum n = store_.Height() + 1; n <= source.Height(); ++n) {
      auto block = source.Get(n);
      if (!block.ok()) return block.status();
      BRDB_RETURN_NOT_OK(store_.Append(block.value()));
    }
    return Status::OK();
  }

 protected:
  /// Assemble the next block in the chain and sign it with `signer`.
  Block AssembleNext(std::vector<Transaction> txns,
                     std::vector<CheckpointVote> votes,
                     const std::string& meta, const Identity& signer) {
    Block b(store_.Height() + 1, store_.LatestHash(), std::move(txns),
            meta, std::move(votes));
    b.AddOrdererSignature(signer);
    return b;
  }

  /// Persist and ship a block to every connected peer from `from`.
  Status StoreAndDeliver(const Block& block, const std::string& from) {
    BRDB_RETURN_NOT_OK(store_.Append(block));
    std::vector<std::string> peers;
    {
      std::lock_guard<std::mutex> lock(peers_mu_);
      peers = peers_;
    }
    std::string bytes = block.Encode();
    for (const auto& peer : peers) {
      NetMessage m;
      m.from = from;
      m.to = peer;
      m.type = kMsgBlock;
      m.payload = bytes;
      net_->Send(std::move(m));
    }
    return Status::OK();
  }

  OrdererConfig config_;
  SimNetwork* net_;
  BlockStore store_;

  std::mutex peers_mu_;
  std::vector<std::string> peers_;
};

}  // namespace brdb

#endif  // BRDB_CONSENSUS_ORDERING_SERVICE_H_
