// PbftOrderingService: byzantine-fault-tolerant ordering via the PBFT
// three-phase protocol (stand-in for the paper's BFT-SMaRt cluster, §4.4).
//
// The primary (view % n) batches transactions and broadcasts PRE-PREPARE;
// every replica broadcasts PREPARE on a valid pre-prepare, broadcasts
// COMMIT after 2f matching prepares, and finalizes after 2f+1 commits.
// All protocol messages travel over the simulated network, reproducing the
// O(n²) per-block message complexity that makes ordering throughput fall
// as orderer count grows (paper Fig 8(b)). View changes are not
// implemented (the primary is assumed live; byzantine *database* nodes are
// exercised elsewhere) — documented in DESIGN.md.
#ifndef BRDB_CONSENSUS_PBFT_H_
#define BRDB_CONSENSUS_PBFT_H_

#include <map>
#include <set>

#include "consensus/ordering_service.h"

namespace brdb {

inline constexpr const char* kMsgPbftPrePrepare = "pbft_preprepare";
inline constexpr const char* kMsgPbftPrepare = "pbft_prepare";
inline constexpr const char* kMsgPbftCommit = "pbft_commit";

class PbftOrderingService : public OrderingCore {
 public:
  PbftOrderingService(OrdererConfig config, SimNetwork* net,
                      std::vector<Identity> orderers);
  ~PbftOrderingService() override;

  Status SubmitTransaction(const Transaction& tx) override;
  void SubmitCheckpointVote(const CheckpointVote& vote) override;
  void Start() override;
  void Stop() override;
  std::vector<Identity> OrdererIdentities() const override {
    return orderers_;
  }

  size_t FaultTolerance() const { return (orderers_.size() - 1) / 3; }

 private:
  std::string EndpointOf(size_t i) const {
    return "orderer:" + orderers_[i].name;
  }
  void HandleMessage(size_t node, const NetMessage& m);
  void PrimaryLoop();
  void BroadcastFrom(size_t node, const std::string& type,
                     const std::string& payload);

  std::vector<Identity> orderers_;
  BlockCutter cutter_;

  // Per-block agreement state.
  struct Agreement {
    Block block;
    bool have_block = false;
    std::set<size_t> prepares;
    std::set<size_t> commits;
    std::set<size_t> sent_prepare;  // replicas that broadcast prepare
    std::set<size_t> sent_commit;   // replicas that broadcast commit
    bool finalized = false;
  };
  std::mutex agree_mu_;
  std::map<BlockNum, Agreement> agreements_;
  std::condition_variable agree_cv_;

  std::atomic<bool> running_{false};
  std::thread primary_thread_;
};

}  // namespace brdb

#endif  // BRDB_CONSENSUS_PBFT_H_
