// KafkaOrderingService (paper §4.4): N orderer front-ends publish received
// transactions, checkpoint votes and time-to-cut markers to a shared FIFO
// topic (the in-process SimKafkaCluster, standing in for Kafka+ZooKeeper).
// Consumption order is identical for every orderer, so all of them cut
// byte-identical blocks: a block is cut when `block_size` transactions have
// been consumed, or at the first time-to-cut marker for the current epoch
// (later duplicates are ignored, as in the paper). Every orderer signs the
// block; each connected peer receives it from the orderer it is assigned
// to. Ordering cost does not grow with the number of orderer nodes — the
// flat line of Fig 8(b).
#ifndef BRDB_CONSENSUS_KAFKA_H_
#define BRDB_CONSENSUS_KAFKA_H_

#include "consensus/ordering_service.h"

namespace brdb {

/// The FIFO topic. Thread-safe, in-process stand-in for a Kafka partition.
class SimKafkaCluster {
 public:
  struct Record {
    enum class Kind : uint8_t { kTx = 0, kVote = 1, kTimeToCut = 2 };
    Kind kind = Kind::kTx;
    uint64_t epoch = 0;     // kTimeToCut: which block this marker targets
    std::string payload;    // encoded tx / vote
  };

  void Publish(Record r);

  /// Read the record at *offset (advancing it); waits up to `wait_us`.
  bool Consume(size_t* offset, Record* out, Micros wait_us);

  size_t LogSize() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Record> log_;
};

class KafkaOrderingService : public OrderingCore {
 public:
  KafkaOrderingService(OrdererConfig config, SimNetwork* net,
                       std::vector<Identity> orderers);
  ~KafkaOrderingService() override;

  Status SubmitTransaction(const Transaction& tx) override;
  void SubmitCheckpointVote(const CheckpointVote& vote) override;
  void Start() override;
  void Stop() override;

  /// Crash-orderer chaos: the consumer stops cutting blocks while paused;
  /// the kafka log keeps accepting records, so resume drains the backlog.
  void Pause(bool paused) override { paused_.store(paused); }
  std::vector<Identity> OrdererIdentities() const override {
    return orderers_;
  }

  /// Endpoint of orderer node `i` (clients/peers load-balance over these).
  std::string EndpointOf(size_t i) const {
    return "orderer:" + orderers_[i % orderers_.size()].name;
  }
  size_t NumOrderers() const { return orderers_.size(); }

 private:
  void ConsumerLoop();
  void TimerLoop(size_t orderer_index);

  std::vector<Identity> orderers_;
  SimKafkaCluster cluster_;
  std::atomic<bool> running_{false};
  std::atomic<bool> paused_{false};
  std::atomic<uint64_t> rr_{0};  // submit load-balancing

  // Shared epoch bookkeeping for the timer threads: transactions consumed
  // into the current batch and when the batch started.
  std::atomic<uint64_t> current_epoch_{0};
  std::atomic<int64_t> batch_started_at_{0};  // 0 = batch empty
  std::atomic<uint64_t> ttc_published_for_{0};

  std::thread consumer_thread_;
  std::vector<std::thread> timer_threads_;
};

}  // namespace brdb

#endif  // BRDB_CONSENSUS_KAFKA_H_
