#include "consensus/solo.h"

#include "wire/codec.h"

namespace brdb {

SoloOrderer::SoloOrderer(OrdererConfig config, SimNetwork* net,
                         Identity identity)
    : OrderingCore(config, net),
      identity_(std::move(identity)),
      endpoint_("orderer:" + identity_.name),
      cutter_(config.block_size, config.block_timeout_us) {
  net_->RegisterEndpoint(endpoint_, [this](const NetMessage& m) {
    if (m.type == kMsgTx) {
      auto tx = Transaction::Decode(m.payload);
      if (tx.ok()) (void)SubmitTransaction(tx.value());
    } else if (m.type == kMsgVote) {
      auto v = DecodeCheckpointVote(m.payload);
      if (v.ok()) SubmitCheckpointVote(v.value());
    } else if (m.type == kMsgFetchBlock) {
      Decoder dec(m.payload);
      uint64_t number = 0;
      if (dec.GetU64(&number)) {
        auto block = GetBlock(number);
        if (block.ok()) {
          NetMessage reply;
          reply.from = endpoint_;
          reply.to = m.from;
          reply.type = kMsgBlock;
          reply.payload = block.value().Encode();
          net_->Send(std::move(reply));
        }
      }
    }
  });
}

SoloOrderer::~SoloOrderer() {
  Stop();
  net_->UnregisterEndpoint(endpoint_);
}

Status SoloOrderer::SubmitTransaction(const Transaction& tx) {
  if (!running_.load()) {
    return Status::Unavailable("orderer not running");
  }
  cutter_.Add(tx);
  return Status::OK();
}

void SoloOrderer::SubmitCheckpointVote(const CheckpointVote& vote) {
  cutter_.AddVote(vote);
}

void SoloOrderer::Start() {
  if (running_.exchange(true)) return;
  cutter_thread_ = std::thread([this] { CutterLoop(); });
}

void SoloOrderer::Stop() {
  if (!running_.exchange(false)) return;
  if (cutter_thread_.joinable()) cutter_thread_.join();
}

void SoloOrderer::CutterLoop() {
  const auto& clock = RealClock::Shared();
  while (running_.load()) {
    if (cutter_.ShouldCut()) {
      auto [txns, votes] = cutter_.Cut();
      if (!txns.empty() || !votes.empty()) {
        Block b = AssembleNext(std::move(txns), std::move(votes), "solo",
                               identity_);
        (void)StoreAndDeliver(b, endpoint_);
      }
    } else {
      clock->SleepMicros(config_.tick_us);
    }
  }
  // Drain remaining transactions so tests can stop cleanly.
  while (!cutter_.Empty()) {
    auto [txns, votes] = cutter_.Cut();
    if (txns.empty()) break;
    Block b =
        AssembleNext(std::move(txns), std::move(votes), "solo", identity_);
    (void)StoreAndDeliver(b, endpoint_);
  }
}

}  // namespace brdb
