// RaftOrderingService: crash-fault-tolerant ordering via leader-based log
// replication (the paper lists Raft among the pluggable CFT protocols).
//
// Simplifications relative to full Raft (documented in DESIGN.md): log
// entries are whole blocks; the election protocol is priority-based (the
// lowest-index live node becomes leader after missing heartbeats) rather
// than randomized-timeout voting; and safety relies on the leader being
// the only block assembler per term. AppendEntries / acks / commit
// notifications and heartbeats all travel over the simulated network, so
// replication cost is modeled.
#ifndef BRDB_CONSENSUS_RAFT_H_
#define BRDB_CONSENSUS_RAFT_H_

#include <map>
#include <set>

#include "consensus/ordering_service.h"

namespace brdb {

// Internal message types.
inline constexpr const char* kMsgRaftAppend = "raft_append";
inline constexpr const char* kMsgRaftAck = "raft_ack";
inline constexpr const char* kMsgRaftCommit = "raft_commit";
inline constexpr const char* kMsgRaftHeartbeat = "raft_hb";

class RaftOrderingService : public OrderingCore {
 public:
  RaftOrderingService(OrdererConfig config, SimNetwork* net,
                      std::vector<Identity> orderers);
  ~RaftOrderingService() override;

  Status SubmitTransaction(const Transaction& tx) override;
  void SubmitCheckpointVote(const CheckpointVote& vote) override;
  void Start() override;
  void Stop() override;
  std::vector<Identity> OrdererIdentities() const override {
    return orderers_;
  }

  /// Fault injection: crash / restart an orderer node.
  void CrashNode(size_t index);
  void RestartNode(size_t index);

  size_t LeaderIndex() const;
  uint64_t Term() const;

 private:
  std::string EndpointOf(size_t i) const {
    return "orderer:" + orderers_[i].name;
  }
  void HandleMessage(size_t node, const NetMessage& m);
  void LeaderLoop();
  void MonitorLoop();
  bool IsAlive(size_t i) const;

  std::vector<Identity> orderers_;
  BlockCutter cutter_;

  mutable std::mutex state_mu_;
  size_t leader_ = 0;
  uint64_t term_ = 1;
  std::set<size_t> crashed_;
  Micros last_heartbeat_seen_ = 0;

  // Replication state (leader side): block number -> acked nodes.
  std::map<BlockNum, std::set<size_t>> acks_;
  std::map<BlockNum, Block> in_flight_;

  std::atomic<bool> running_{false};
  std::thread leader_thread_;
  std::thread monitor_thread_;
};

}  // namespace brdb

#endif  // BRDB_CONSENSUS_RAFT_H_
