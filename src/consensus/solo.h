// SoloOrderer: single-sequencer ordering service. No fault tolerance; used
// for development, unit tests and as the contention-free upper bound in
// benchmarks.
#ifndef BRDB_CONSENSUS_SOLO_H_
#define BRDB_CONSENSUS_SOLO_H_

#include "consensus/ordering_service.h"

namespace brdb {

class SoloOrderer : public OrderingCore {
 public:
  SoloOrderer(OrdererConfig config, SimNetwork* net, Identity identity);
  ~SoloOrderer() override;

  Status SubmitTransaction(const Transaction& tx) override;
  void SubmitCheckpointVote(const CheckpointVote& vote) override;
  void Start() override;
  void Stop() override;
  std::vector<Identity> OrdererIdentities() const override {
    return {identity_};
  }

  /// Endpoint name on the simulated network ("orderer:<name>").
  const std::string& endpoint() const { return endpoint_; }

 private:
  void CutterLoop();

  Identity identity_;
  std::string endpoint_;
  BlockCutter cutter_;
  std::atomic<bool> running_{false};
  std::thread cutter_thread_;
};

}  // namespace brdb

#endif  // BRDB_CONSENSUS_SOLO_H_
