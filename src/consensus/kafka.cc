#include "consensus/kafka.h"

#include "wire/codec.h"

namespace brdb {

void SimKafkaCluster::Publish(Record r) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    log_.push_back(std::move(r));
  }
  cv_.notify_all();
}

bool SimKafkaCluster::Consume(size_t* offset, Record* out, Micros wait_us) {
  std::unique_lock<std::mutex> lock(mu_);
  if (*offset >= log_.size()) {
    cv_.wait_for(lock, std::chrono::microseconds(wait_us),
                 [&] { return *offset < log_.size(); });
  }
  if (*offset >= log_.size()) return false;
  *out = log_[*offset];
  ++*offset;
  return true;
}

size_t SimKafkaCluster::LogSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

KafkaOrderingService::KafkaOrderingService(OrdererConfig config,
                                           SimNetwork* net,
                                           std::vector<Identity> orderers)
    : OrderingCore(config, net), orderers_(std::move(orderers)) {
  for (size_t i = 0; i < orderers_.size(); ++i) {
    std::string endpoint = "orderer:" + orderers_[i].name;
    net_->RegisterEndpoint(endpoint, [this, endpoint](const NetMessage& m) {
      if (m.type == kMsgTx) {
        SimKafkaCluster::Record r;
        r.kind = SimKafkaCluster::Record::Kind::kTx;
        r.payload = m.payload;
        cluster_.Publish(std::move(r));
      } else if (m.type == kMsgVote) {
        SimKafkaCluster::Record r;
        r.kind = SimKafkaCluster::Record::Kind::kVote;
        r.payload = m.payload;
        cluster_.Publish(std::move(r));
      } else if (m.type == kMsgFetchBlock) {
        Decoder dec(m.payload);
        uint64_t number = 0;
        if (dec.GetU64(&number)) {
          auto block = GetBlock(number);
          if (block.ok()) {
            NetMessage reply;
            reply.from = endpoint;
            reply.to = m.from;
            reply.type = kMsgBlock;
            reply.payload = block.value().Encode();
            net_->Send(std::move(reply));
          }
        }
      }
    });
  }
}

KafkaOrderingService::~KafkaOrderingService() {
  Stop();
  for (const auto& id : orderers_) {
    net_->UnregisterEndpoint("orderer:" + id.name);
  }
}

Status KafkaOrderingService::SubmitTransaction(const Transaction& tx) {
  if (!running_.load()) return Status::Unavailable("orderer not running");
  // In-process fast path (clients load-balance across orderer nodes; the
  // publish itself is what Kafka would serialize).
  SimKafkaCluster::Record r;
  r.kind = SimKafkaCluster::Record::Kind::kTx;
  r.payload = tx.Encode();
  cluster_.Publish(std::move(r));
  rr_.fetch_add(1);
  return Status::OK();
}

void KafkaOrderingService::SubmitCheckpointVote(const CheckpointVote& vote) {
  SimKafkaCluster::Record r;
  r.kind = SimKafkaCluster::Record::Kind::kVote;
  r.payload = EncodeCheckpointVote(vote);
  cluster_.Publish(std::move(r));
}

void KafkaOrderingService::Start() {
  if (running_.exchange(true)) return;
  consumer_thread_ = std::thread([this] { ConsumerLoop(); });
  for (size_t i = 0; i < orderers_.size(); ++i) {
    timer_threads_.emplace_back([this, i] { TimerLoop(i); });
  }
}

void KafkaOrderingService::Stop() {
  if (!running_.exchange(false)) return;
  if (consumer_thread_.joinable()) consumer_thread_.join();
  for (auto& t : timer_threads_) {
    if (t.joinable()) t.join();
  }
  timer_threads_.clear();
}

void KafkaOrderingService::ConsumerLoop() {
  size_t offset = 0;
  std::vector<Transaction> batch;
  std::vector<CheckpointVote> votes;

  auto cut = [&] {
    if (batch.empty() && votes.empty()) return;
    Block b = AssembleNext(std::move(batch), std::move(votes), "kafka",
                           orderers_[0]);
    // Every orderer consumed the same stream and built this same block;
    // they all sign it (paper §4.4).
    for (size_t i = 1; i < orderers_.size(); ++i) {
      b.AddOrdererSignature(orderers_[i]);
    }
    (void)StoreAndDeliver(b, "orderer:" + orderers_[0].name);
    batch.clear();
    votes.clear();
    current_epoch_.fetch_add(1);
    batch_started_at_.store(0);
  };

  while (running_.load() || offset < cluster_.LogSize()) {
    if (paused_.load() && running_.load()) {
      // Crashed orderer: stop consuming (no block cuts). Publishes keep
      // landing in the kafka log, so un-pausing drains the backlog — the
      // harness measures recovery as time-to-drain after resume.
      RealClock::Shared()->SleepMicros(config_.tick_us);
      continue;
    }
    SimKafkaCluster::Record rec;
    if (!cluster_.Consume(&offset, &rec, config_.tick_us)) {
      if (!running_.load()) break;
      continue;
    }
    switch (rec.kind) {
      case SimKafkaCluster::Record::Kind::kTx: {
        auto tx = Transaction::Decode(rec.payload);
        if (!tx.ok()) break;
        if (batch.empty()) {
          batch_started_at_.store(RealClock::Shared()->NowMicros());
        }
        batch.push_back(std::move(tx).value());
        if (batch.size() >= config_.block_size) cut();
        break;
      }
      case SimKafkaCluster::Record::Kind::kVote: {
        auto v = DecodeCheckpointVote(rec.payload);
        if (v.ok()) votes.push_back(std::move(v).value());
        break;
      }
      case SimKafkaCluster::Record::Kind::kTimeToCut: {
        // First marker for the current epoch wins; stale ones are ignored.
        if (rec.epoch == current_epoch_.load()) cut();
        break;
      }
    }
  }
  cut();  // drain on shutdown
}

void KafkaOrderingService::TimerLoop(size_t orderer_index) {
  (void)orderer_index;  // every orderer runs an identical timer
  const auto& clock = RealClock::Shared();
  while (running_.load()) {
    int64_t started = batch_started_at_.load();
    uint64_t epoch = current_epoch_.load();
    if (started != 0 &&
        clock->NowMicros() - started >= config_.block_timeout_us &&
        ttc_published_for_.load() <= epoch) {
      ttc_published_for_.store(epoch + 1);
      SimKafkaCluster::Record r;
      r.kind = SimKafkaCluster::Record::Kind::kTimeToCut;
      r.epoch = epoch;
      cluster_.Publish(std::move(r));
    }
    clock->SleepMicros(config_.tick_us);
  }
}

}  // namespace brdb
