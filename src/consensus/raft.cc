#include "consensus/raft.h"

#include "wire/codec.h"

namespace brdb {

RaftOrderingService::RaftOrderingService(OrdererConfig config,
                                         SimNetwork* net,
                                         std::vector<Identity> orderers)
    : OrderingCore(config, net),
      orderers_(std::move(orderers)),
      cutter_(config.block_size, config.block_timeout_us) {
  for (size_t i = 0; i < orderers_.size(); ++i) {
    net_->RegisterEndpoint(EndpointOf(i), [this, i](const NetMessage& m) {
      HandleMessage(i, m);
    });
  }
}

RaftOrderingService::~RaftOrderingService() {
  Stop();
  for (size_t i = 0; i < orderers_.size(); ++i) {
    net_->UnregisterEndpoint(EndpointOf(i));
  }
}

bool RaftOrderingService::IsAlive(size_t i) const {
  return crashed_.count(i) == 0;
}

Status RaftOrderingService::SubmitTransaction(const Transaction& tx) {
  if (!running_.load()) return Status::Unavailable("orderer not running");
  size_t leader;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    leader = leader_;
    if (!IsAlive(leader)) {
      return Status::Unavailable("raft leader crashed; election in progress");
    }
  }
  // Followers forward to the leader over the network; submitting directly
  // to the leader skips a hop, as in real deployments where clients learn
  // the leader address.
  NetMessage m;
  m.from = "client";
  m.to = EndpointOf(leader);
  m.type = kMsgTx;
  m.payload = tx.Encode();
  net_->Send(std::move(m));
  return Status::OK();
}

void RaftOrderingService::SubmitCheckpointVote(const CheckpointVote& vote) {
  cutter_.AddVote(vote);
}

void RaftOrderingService::HandleMessage(size_t node, const NetMessage& m) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!IsAlive(node)) return;  // crashed nodes drop everything
  }
  if (m.type == kMsgTx) {
    auto tx = Transaction::Decode(m.payload);
    if (tx.ok()) cutter_.Add(std::move(tx).value());
    return;
  }
  if (m.type == kMsgVote) {
    auto v = DecodeCheckpointVote(m.payload);
    if (v.ok()) cutter_.AddVote(v.value());
    return;
  }
  if (m.type == kMsgFetchBlock) {
    Decoder dec(m.payload);
    uint64_t number = 0;
    if (dec.GetU64(&number)) {
      auto block = GetBlock(number);
      if (block.ok()) {
        NetMessage reply;
        reply.from = EndpointOf(node);
        reply.to = m.from;
        reply.type = kMsgBlock;
        reply.payload = block.value().Encode();
        net_->Send(std::move(reply));
      }
    }
    return;
  }
  if (m.type == kMsgRaftAppend) {
    // Follower: acknowledge replication of the proposed block.
    NetMessage ack;
    ack.from = EndpointOf(node);
    ack.to = m.from;
    ack.type = kMsgRaftAck;
    Decoder dec(m.payload);
    uint64_t number = 0;
    std::string block_bytes;
    if (!dec.GetU64(&number) || !dec.GetString(&block_bytes)) return;
    Encoder enc;
    enc.PutU64(number);
    enc.PutU64(node);
    ack.payload = enc.Take();
    net_->Send(std::move(ack));
    return;
  }
  if (m.type == kMsgRaftAck) {
    Decoder dec(m.payload);
    uint64_t number = 0, from_node = 0;
    if (!dec.GetU64(&number) || !dec.GetU64(&from_node)) return;
    Block to_deliver;
    bool commit = false;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      auto it = in_flight_.find(number);
      if (it == in_flight_.end()) return;
      acks_[number].insert(static_cast<size_t>(from_node));
      // Majority = floor(n/2) + 1 including the leader itself.
      if (acks_[number].size() + 1 > orderers_.size() / 2) {
        to_deliver = it->second;
        in_flight_.erase(it);
        acks_.erase(number);
        commit = true;
      }
    }
    if (commit) {
      (void)StoreAndDeliver(to_deliver, m.to);
      // Tell followers the block is committed.
      for (size_t i = 0; i < orderers_.size(); ++i) {
        if (EndpointOf(i) == m.to) continue;
        Encoder enc;
        enc.PutU64(number);
        NetMessage cm;
        cm.from = m.to;
        cm.to = EndpointOf(i);
        cm.type = kMsgRaftCommit;
        cm.payload = enc.Take();
        net_->Send(std::move(cm));
      }
    }
    return;
  }
  if (m.type == kMsgRaftHeartbeat) {
    std::lock_guard<std::mutex> lock(state_mu_);
    last_heartbeat_seen_ = RealClock::Shared()->NowMicros();
    return;
  }
  // kMsgRaftCommit needs no follower action in this simplified model: the
  // authoritative store lives in StoreAndDeliver.
}

void RaftOrderingService::LeaderLoop() {
  const auto& clock = RealClock::Shared();
  Micros last_hb = 0;
  while (running_.load()) {
    size_t me;
    bool i_am_leader_alive;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      me = leader_;
      i_am_leader_alive = IsAlive(me);
    }
    if (!i_am_leader_alive) {
      clock->SleepMicros(config_.tick_us);
      continue;
    }
    // Heartbeats.
    Micros now = clock->NowMicros();
    if (now - last_hb > 50000) {
      last_hb = now;
      for (size_t i = 0; i < orderers_.size(); ++i) {
        if (i == me) continue;
        NetMessage hb;
        hb.from = EndpointOf(me);
        hb.to = EndpointOf(i);
        hb.type = kMsgRaftHeartbeat;
        net_->Send(std::move(hb));
      }
    }
    if (!cutter_.ShouldCut()) {
      clock->SleepMicros(config_.tick_us);
      continue;
    }
    auto [txns, votes] = cutter_.Cut();
    if (txns.empty() && votes.empty()) continue;
    uint64_t term;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      term = term_;
    }
    Block b = AssembleNext(std::move(txns), std::move(votes),
                           "raft term=" + std::to_string(term),
                           orderers_[me]);
    if (orderers_.size() == 1) {
      (void)StoreAndDeliver(b, EndpointOf(me));
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      in_flight_[b.number()] = b;
    }
    std::string bytes = b.Encode();
    for (size_t i = 0; i < orderers_.size(); ++i) {
      if (i == me) continue;
      Encoder enc;
      enc.PutU64(b.number());
      enc.PutString(bytes);
      NetMessage m;
      m.from = EndpointOf(me);
      m.to = EndpointOf(i);
      m.type = kMsgRaftAppend;
      m.payload = enc.Take();
      net_->Send(std::move(m));
    }
    // Wait for this block to commit before cutting the next (keeps the
    // log strictly ordered without watermark machinery).
    while (running_.load()) {
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        if (in_flight_.count(b.number()) == 0) break;
        if (!IsAlive(leader_) || leader_ != me) break;
      }
      clock->SleepMicros(config_.tick_us);
    }
  }
}

void RaftOrderingService::MonitorLoop() {
  const auto& clock = RealClock::Shared();
  while (running_.load()) {
    clock->SleepMicros(20000);
    std::lock_guard<std::mutex> lock(state_mu_);
    if (IsAlive(leader_)) continue;
    // Election: lowest-index live node takes over with a higher term.
    for (size_t i = 0; i < orderers_.size(); ++i) {
      if (IsAlive(i)) {
        leader_ = i;
        ++term_;
        in_flight_.clear();
        acks_.clear();
        break;
      }
    }
  }
}

void RaftOrderingService::Start() {
  if (running_.exchange(true)) return;
  leader_thread_ = std::thread([this] { LeaderLoop(); });
  monitor_thread_ = std::thread([this] { MonitorLoop(); });
}

void RaftOrderingService::Stop() {
  if (!running_.exchange(false)) return;
  if (leader_thread_.joinable()) leader_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();
}

void RaftOrderingService::CrashNode(size_t index) {
  std::lock_guard<std::mutex> lock(state_mu_);
  crashed_.insert(index);
}

void RaftOrderingService::RestartNode(size_t index) {
  std::lock_guard<std::mutex> lock(state_mu_);
  crashed_.erase(index);
}

size_t RaftOrderingService::LeaderIndex() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return leader_;
}

uint64_t RaftOrderingService::Term() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return term_;
}

}  // namespace brdb
