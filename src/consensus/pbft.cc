#include "consensus/pbft.h"

#include "wire/codec.h"

namespace brdb {

PbftOrderingService::PbftOrderingService(OrdererConfig config,
                                         SimNetwork* net,
                                         std::vector<Identity> orderers)
    : OrderingCore(config, net),
      orderers_(std::move(orderers)),
      cutter_(config.block_size, config.block_timeout_us) {
  for (size_t i = 0; i < orderers_.size(); ++i) {
    net_->RegisterEndpoint(EndpointOf(i), [this, i](const NetMessage& m) {
      HandleMessage(i, m);
    });
  }
}

PbftOrderingService::~PbftOrderingService() {
  Stop();
  for (size_t i = 0; i < orderers_.size(); ++i) {
    net_->UnregisterEndpoint(EndpointOf(i));
  }
}

Status PbftOrderingService::SubmitTransaction(const Transaction& tx) {
  if (!running_.load()) return Status::Unavailable("orderer not running");
  cutter_.Add(tx);
  return Status::OK();
}

void PbftOrderingService::SubmitCheckpointVote(const CheckpointVote& vote) {
  cutter_.AddVote(vote);
}

void PbftOrderingService::BroadcastFrom(size_t node, const std::string& type,
                                        const std::string& payload) {
  for (size_t i = 0; i < orderers_.size(); ++i) {
    if (i == node) continue;
    NetMessage m;
    m.from = EndpointOf(node);
    m.to = EndpointOf(i);
    m.type = type;
    m.payload = payload;
    net_->Send(std::move(m));
  }
}

void PbftOrderingService::HandleMessage(size_t node, const NetMessage& m) {
  const size_t n = orderers_.size();
  const size_t f = FaultTolerance();

  if (m.type == kMsgTx) {
    auto tx = Transaction::Decode(m.payload);
    if (tx.ok()) cutter_.Add(std::move(tx).value());
    return;
  }
  if (m.type == kMsgVote) {
    auto v = DecodeCheckpointVote(m.payload);
    if (v.ok()) cutter_.AddVote(v.value());
    return;
  }
  if (m.type == kMsgFetchBlock) {
    Decoder dec(m.payload);
    uint64_t number = 0;
    if (dec.GetU64(&number)) {
      auto block = GetBlock(number);
      if (block.ok()) {
        NetMessage reply;
        reply.from = EndpointOf(node);
        reply.to = m.from;
        reply.type = kMsgBlock;
        reply.payload = block.value().Encode();
        net_->Send(std::move(reply));
      }
    }
    return;
  }

  if (m.type == kMsgPbftPrePrepare) {
    Decoder dec(m.payload);
    uint64_t number = 0;
    std::string block_bytes;
    if (!dec.GetU64(&number) || !dec.GetString(&block_bytes)) return;
    auto block = Block::Decode(block_bytes);
    if (!block.ok() || !block.value().HashIsValid()) return;

    std::string prepare_payload;
    {
      std::lock_guard<std::mutex> lock(agree_mu_);
      Agreement& a = agreements_[number];
      if (!a.have_block) {
        a.block = std::move(block).value();
        a.have_block = true;
      }
      if (a.sent_prepare.count(node)) return;
      a.sent_prepare.insert(node);
      a.prepares.insert(node);  // own prepare counts
      Encoder enc;
      enc.PutU64(number);
      enc.PutString(a.block.hash());
      enc.PutU64(node);
      prepare_payload = enc.Take();
    }
    BroadcastFrom(node, kMsgPbftPrepare, prepare_payload);
    return;
  }

  if (m.type == kMsgPbftPrepare || m.type == kMsgPbftCommit) {
    Decoder dec(m.payload);
    uint64_t number = 0, sender = 0;
    std::string hash;
    if (!dec.GetU64(&number) || !dec.GetString(&hash) || !dec.GetU64(&sender)) {
      return;
    }
    std::string commit_payload;
    Block to_deliver;
    bool deliver = false;
    {
      std::lock_guard<std::mutex> lock(agree_mu_);
      Agreement& a = agreements_[number];
      if (a.have_block && a.block.hash() != hash) return;  // byzantine noise
      if (m.type == kMsgPbftPrepare) {
        a.prepares.insert(static_cast<size_t>(sender));
        // prepared: pre-prepare + 2f matching prepares.
        if (a.have_block && a.prepares.size() >= 2 * f &&
            !a.sent_commit.count(node)) {
          a.sent_commit.insert(node);
          a.commits.insert(node);
          Encoder enc;
          enc.PutU64(number);
          enc.PutString(a.block.hash());
          enc.PutU64(node);
          commit_payload = enc.Take();
        }
      } else {
        a.commits.insert(static_cast<size_t>(sender));
      }
      // committed: 2f+1 commits network-wide -> finalize once.
      if (a.have_block && !a.finalized && a.commits.size() >= 2 * f + 1) {
        a.finalized = true;
        to_deliver = a.block;
        deliver = true;
      }
    }
    if (!commit_payload.empty()) {
      BroadcastFrom(node, kMsgPbftCommit, commit_payload);
      // A lone replica network (n=1) never receives its own broadcast;
      // handled in PrimaryLoop's fast path instead.
    }
    if (deliver) {
      (void)StoreAndDeliver(to_deliver, EndpointOf(node % n));
      agree_cv_.notify_all();
    }
    return;
  }
}

void PbftOrderingService::PrimaryLoop() {
  const auto& clock = RealClock::Shared();
  const size_t primary = 0;  // view 0; view changes out of scope
  while (running_.load()) {
    if (!cutter_.ShouldCut()) {
      clock->SleepMicros(config_.tick_us);
      continue;
    }
    auto [txns, votes] = cutter_.Cut();
    if (txns.empty() && votes.empty()) continue;
    Block b = AssembleNext(std::move(txns), std::move(votes), "pbft view=0",
                           orderers_[primary]);
    BlockNum number = b.number();

    if (orderers_.size() == 1) {
      (void)StoreAndDeliver(b, EndpointOf(primary));
      continue;
    }

    std::string block_bytes = b.Encode();
    {
      std::lock_guard<std::mutex> lock(agree_mu_);
      Agreement& a = agreements_[number];
      a.block = std::move(b);
      a.have_block = true;
      a.sent_prepare.insert(primary);
      a.prepares.insert(primary);
    }
    Encoder enc;
    enc.PutU64(number);
    enc.PutString(block_bytes);
    BroadcastFrom(primary, kMsgPbftPrePrepare, enc.Take());

    // Sequential pipeline: wait for this block to finalize (keeps the
    // store strictly ordered, and matches the latency-bound behaviour the
    // paper measures for BFT ordering).
    std::unique_lock<std::mutex> lock(agree_mu_);
    agree_cv_.wait_for(lock, std::chrono::seconds(10), [&] {
      auto it = agreements_.find(number);
      return !running_.load() ||
             (it != agreements_.end() && it->second.finalized);
    });
    // Garbage-collect old agreement state.
    for (auto it = agreements_.begin(); it != agreements_.end();) {
      it = (it->first + 4 < number) ? agreements_.erase(it) : std::next(it);
    }
  }
}

void PbftOrderingService::Start() {
  if (running_.exchange(true)) return;
  primary_thread_ = std::thread([this] { PrimaryLoop(); });
}

void PbftOrderingService::Stop() {
  if (!running_.exchange(false)) return;
  agree_cv_.notify_all();
  if (primary_thread_.joinable()) primary_thread_.join();
}

}  // namespace brdb
