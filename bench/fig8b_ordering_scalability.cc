// Figure 8(b) — ordering/execution scalability of the commit path.
//
// The paper's headline claim is that execute-order-in-parallel scales
// transaction execution across executor backends while SSI keeps replicas
// serializable. This bench isolates that claim on the transaction layer:
// N executor threads run the concurrent phase (MVCC reads, SIREAD and
// predicate registration, rw-edge recording, versioned writes) in
// block-sized rounds, then a single coordinator runs the serial
// block-order commit-validation phase — exactly the node's block-processor
// pipeline without network/ordering noise.
//
// Two configurations of the SAME code are compared at each thread count:
//   single_mutex (stripes=1): every TxnManager structure behind one lock,
//     the design this repo shipped with;
//   striped (default): sharded registry + striped SIREAD/predicate maps.
// The interesting number is striped/single_mutex throughput at >= 4
// executor threads. Results land in a JSON file (default BENCH_fig8b.json)
// so successive PRs can track the trajectory; scripts/run_benches.sh wires
// this up.
//
// Workload per transaction: one 32-row indexed range scan over a 4096-row
// accounts table (SIREAD per visible row, one predicate, the usual rw-edge
// probes) and one read-modify-write update of a scanned row (ww conflicts
// resolve by block order, losers abort). Aborts are counted but only
// commits enter the throughput.
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "storage/database.h"
#include "txn/txn_context.h"

using namespace brdb;

namespace {

constexpr int kRows = 4096;
constexpr int kScanWidth = 32;
constexpr int kBlockSize = 96;
constexpr int kBlocks = 40;
// Best-of-N per configuration: the repetition with the least scheduler
// interference is the honest estimate on a shared box.
constexpr int kRepetitions = 5;

TableSchema AccountsSchema() {
  return TableSchema("accounts",
                     {{"id", ValueType::kInt, true, true, false, false},
                      {"balance", ValueType::kInt, false, false, false,
                       false}});
}

struct RunResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double seconds = 0;
  double tps() const { return committed / (seconds > 0 ? seconds : 1); }
};

/// Reusable generation barrier so executor threads persist across blocks
/// (spawning threads per block costs ~100us each on a small host — real
/// measurement noise at these run lengths).
class Barrier {
 public:
  explicit Barrier(size_t parties) : parties_(parties) {}
  void Arrive() {
    std::unique_lock<std::mutex> lock(mu_);
    size_t gen = generation_;
    if (++count_ == parties_) {
      count_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t parties_;
  size_t count_ = 0;
  size_t generation_ = 0;
};

/// One executed-but-uncommitted transaction handed to the coordinator.
struct Executed {
  std::unique_ptr<TxnContext> ctx;
  bool exec_ok = false;
};

RunResult RunConfig(size_t stripes, size_t threads) {
#ifdef BRDB_SEED_BASELINE
  // Pre-change build (scripts/run_benches.sh compiles this bench against
  // the seed commit to produce the true before numbers): the seed
  // TxnManager has no striping knob — one mutex, period.
  (void)stripes;
  Database db;
#else
  Database db{TxnManagerOptions{stripes}};
#endif
  Table* accounts = db.CreateTable(AccountsSchema()).value();
  {
    TxnContext seed(&db,
                    db.txn_manager()->Begin(
                        Snapshot::AtCsn(db.txn_manager()->CurrentCsn())),
                    TxnMode::kInternal);
    for (int i = 0; i < kRows; ++i) {
      (void)seed.Insert(accounts, {Value::Int(i), Value::Int(1000)});
    }
    (void)seed.CommitInternal(1);
  }

  RunResult result;
  Micros t0 = RealClock::Shared()->NowMicros();

  std::vector<Executed> executed(kBlockSize);
  Barrier barrier(threads + 1);

  // Concurrent phase: persistent executor threads split each block's
  // transactions; the barrier hands each finished block to the serial
  // committer and releases the workers into the next one.
  auto worker = [&](size_t tid) {
    for (int block = 0; block < kBlocks; ++block) {
      Rng rng(0x8b00 + block * 131 + tid);
      for (size_t i = tid; i < static_cast<size_t>(kBlockSize);
           i += threads) {
        auto ctx = std::make_unique<TxnContext>(
            &db,
            db.txn_manager()->Begin(
                Snapshot::AtCsn(db.txn_manager()->CurrentCsn())),
            TxnMode::kNormal);
        int64_t lo_key =
            static_cast<int64_t>(rng.Uniform(kRows - kScanWidth));
        Value lo = Value::Int(lo_key);
        Value hi = Value::Int(lo_key + kScanWidth - 1);
        RowId target = kInvalidRowId;
        int64_t target_balance = 0, target_key = 0;
        Status st = ctx->ScanRange(
            accounts, 0, &lo, true, &hi, true,
            [&](RowId id, const Row& values) {
              if (target == kInvalidRowId) {
                target = id;
                target_key = values[0].AsInt();
                target_balance = values[1].AsInt();
              }
              return true;
            });
        if (st.ok() && target != kInvalidRowId) {
          st = ctx->Update(accounts, target,
                           {Value::Int(target_key),
                            Value::Int(target_balance + 1)});
        }
        executed[i].exec_ok = st.ok();
        executed[i].ctx = std::move(ctx);
      }
      barrier.Arrive();  // block fully executed
      barrier.Arrive();  // wait for the serial commit phase
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);

  for (int block = 0; block < kBlocks; ++block) {
    barrier.Arrive();  // wait until every transaction executed

    // Serial phase: block-order commit validation, as the paper requires.
    BlockNum block_num = static_cast<BlockNum>(block + 2);
    std::vector<TxnId> members;
    members.reserve(executed.size());
    for (const Executed& e : executed) members.push_back(e.ctx->id());
    for (size_t pos = 0; pos < executed.size(); ++pos) {
      Executed& e = executed[pos];
      if (!e.exec_ok) {
        e.ctx->Abort(Status::Aborted("execution failed"));
        ++result.aborted;
        continue;
      }
      Status st = e.ctx->CommitSerially(SsiPolicy::kBlockAware, block_num,
                                        static_cast<int>(pos), members);
      if (st.ok()) {
        ++result.committed;
      } else {
        ++result.aborted;
      }
    }
    db.txn_manager()->GarbageCollect();
    barrier.Arrive();  // release the workers into the next block
  }
  for (auto& t : pool) t.join();

  result.seconds =
      static_cast<double>(RealClock::Shared()->NowMicros() - t0) / 1e6;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_fig8b.json";
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  std::printf(
      "Figure 8(b): execute-order-in-parallel throughput vs executor "
      "threads\n");
  std::printf("%-14s %-8s %-10s %-10s %-10s\n", "mode", "threads",
              "committed", "aborted", "tps");

  struct Entry {
    std::string mode;
    size_t stripes;
    size_t threads;
    RunResult r;
  };
  std::vector<Entry> entries;
#ifdef BRDB_SEED_BASELINE
  const std::vector<bool> variants = {false};
#else
  const std::vector<bool> variants = {false, true};
#endif
  for (bool striped : variants) {
    size_t stripes = striped ? 0 : 1;  // 0 = default striping
#ifdef BRDB_SEED_BASELINE
    std::string mode = "seed_single_mutex";
#else
    std::string mode = striped ? "striped" : "single_mutex";
#endif
    for (size_t threads : thread_counts) {
      entries.push_back({mode, stripes, threads, RunResult{}});
    }
  }
  // Round-robin the repetitions across configurations so a slow window on
  // a shared machine cannot bias one configuration's whole sample.
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (Entry& e : entries) {
      RunResult r = RunConfig(e.stripes, e.threads);
      if (r.tps() > e.r.tps()) e.r = r;
    }
  }
  for (const Entry& e : entries) {
    std::printf("%-14s %-8zu %-10" PRIu64 " %-10" PRIu64 " %-10.0f\n",
                e.mode.c_str(), e.threads, e.r.committed, e.r.aborted,
                e.r.tps());
  }
  std::fflush(stdout);

  double base4 = 0, striped4 = 0;
  for (const Entry& e : entries) {
    if (e.threads == 4) {
      (e.mode == "striped" ? striped4 : base4) = e.r.tps();
    }
  }
  double speedup = base4 > 0 ? striped4 / base4 : 0;
  std::printf("speedup at 4 threads (striped / single_mutex): %.2fx\n",
              speedup);

  FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig8b_ordering_scalability\",\n");
  std::fprintf(f,
               "  \"workload\": {\"rows\": %d, \"scan_width\": %d, "
               "\"block_size\": %d, \"blocks\": %d},\n",
               kRows, kScanWidth, kBlockSize, kBlocks);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"stripes\": %zu, \"threads\": "
                 "%zu, \"committed\": %" PRIu64 ", \"aborted\": %" PRIu64
                 ", \"tps\": %.1f}%s\n",
                 e.mode.c_str(), e.stripes, e.threads, e.r.committed,
                 e.r.aborted, e.r.tps(), i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_at_4_threads\": %.2f\n}\n", speedup);
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}
