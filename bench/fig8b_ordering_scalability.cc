// Figure 8(b) — ordering/execution scalability of the commit path.
//
// The paper's headline claim is that execute-order-in-parallel scales
// transaction execution across executor backends while SSI keeps replicas
// serializable. This bench isolates that claim on the transaction layer:
// N executor threads run the concurrent phase (MVCC reads, SIREAD and
// predicate registration, rw-edge recording, versioned writes) and a
// single coordinator runs the serial block-order commit-validation phase —
// exactly the node's block pipeline without network/ordering noise.
//
// Three axes of the SAME code are compared:
//   single_mutex (stripes=1): every TxnManager structure behind one lock,
//     the design this repo shipped with;
//   striped (default): sharded registry + striped SIREAD/predicate maps;
//   pipeline depth d in {1, 2, 4}: how many blocks may be in flight at
//     once — block B's transactions may execute while blocks B-1..B-d+1
//     are still in the serial commit phase (depth 1 = the legacy fully
//     serial execute-then-commit alternation);
//   partitioned (partitions in {2, 4}): tables hash-sharded across
//     per-partition SSI stripe groups, each transaction routed to its
//     home partition so single-partition transactions validate against
//     partition-local bookkeeping only (txn/txn_manager.h).
//
// Transactions use the paper's EOP snapshots: block B's transactions read
// at block height B-4 (clients submit against a slightly stale committed
// height while blocks are in flight), which is what makes overlapped
// execution legal — and the block-aware SSI rules are what keep the
// commit/abort decisions BYTE-IDENTICAL across depths: a conflict with an
// earlier in-flight block manifests as a recorded rw edge when execution
// overlapped it, or as a stale/phantom read when it did not; both abort
// (txn/txn_manager.h). `--check-determinism` verifies exactly that and is
// wired into scripts/check.sh.
//
// Workload per transaction: one 32-row indexed range scan (SIREAD per
// visible row, one predicate, the usual rw-edge probes) and one
// read-modify-write update of the first scanned row. Keys are drawn from
// a per-block slice of the 4096-row table (slices rotate with period 8,
// wider than the deepest pipeline, so steady throughput is measurable),
// except every 16th transaction, which hits a shared hot range to keep
// deterministic cross-block conflicts in the mix. Aborts are counted but
// only commits enter the throughput.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "storage/database.h"
#include "txn/txn_context.h"
#ifndef BRDB_SEED_BASELINE
#include "ledger/checkpoint.h"
#include "storage/partition.h"
#endif

using namespace brdb;

namespace {

// 16384 rows over 8 slices keeps a block's 96 transactions sparse enough
// within their 2048-row slice that intra-block rw chains stay short
// (throughput should measure commits, not block-aware pivot aborts).
constexpr int kRows = 16384;
constexpr int kScanWidth = 32;
constexpr int kBlockSize = 96;
constexpr int kBlocks = 40;
constexpr int kSlices = 8;              // key-space rotation period
constexpr int kSliceRows = kRows / kSlices;
constexpr BlockNum kSnapshotLag = 4;    // snapshot height = block - lag
constexpr int kHotEvery = 16;           // 1-in-16 txns hit the hot range
// Best-of-N per configuration: the repetition with the least scheduler
// interference is the honest estimate on a shared box.
constexpr int kRepetitions = 3;

TableSchema AccountsSchema() {
  TableSchema schema("accounts",
                     {{"id", ValueType::kInt, true, true, false, false},
                      {"balance", ValueType::kInt, false, false, false,
                       false}});
#ifndef BRDB_SEED_BASELINE
  schema.SetPartitionColumn(0);  // PARTITION BY HASH (id)
#endif
  return schema;
}

struct RunResult {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double seconds = 0;
  double tps() const { return committed / (seconds > 0 ? seconds : 1); }
};

/// One executed-but-uncommitted transaction handed to the coordinator.
struct Executed {
  std::unique_ptr<TxnContext> ctx;
  bool exec_ok = false;
};

/// Execute one transaction. Content is a pure function of (block, idx) so
/// the workload is identical across thread counts, stripe counts and
/// pipeline depths.
void ExecuteTxn(Database* db, Table* accounts, BlockNum block, int idx,
                size_t partitions, Executed* out) {
  Rng rng(0x8b00 + static_cast<uint64_t>(block) * 1315423911ULL +
          static_cast<uint64_t>(idx));
  BlockNum h = block > kSnapshotLag ? block - kSnapshotLag : 1;
  int64_t lo_key;
  if (idx % kHotEvery == 0) {
    lo_key = 0;  // shared hot range: deterministic cross-block conflicts
  } else {
    int64_t slice = static_cast<int64_t>(block % kSlices);
    lo_key = slice * kSliceRows +
             static_cast<int64_t>(rng.Uniform(kSliceRows - kScanWidth));
  }
#ifdef BRDB_SEED_BASELINE
  (void)partitions;
  auto ctx = std::make_unique<TxnContext>(
      db, db->txn_manager()->Begin(Snapshot::AtBlockHeight(h)),
      TxnMode::kNormal);
#else
  // Route the transaction to the home partition of the first key it will
  // touch — the same pure-function-of-the-key routing a node's dispatcher
  // applies, so single-partition range scans validate partition-locally.
  uint32_t home = PartitionOfValue(Value::Int(lo_key), partitions);
  auto ctx = std::make_unique<TxnContext>(
      db, db->txn_manager()->Begin(Snapshot::AtBlockHeight(h), "", home),
      TxnMode::kNormal);
#endif
  Value lo = Value::Int(lo_key);
  Value hi = Value::Int(lo_key + kScanWidth - 1);
  RowId target = kInvalidRowId;
  int64_t target_balance = 0, target_key = 0;
  Status st = ctx->ScanRange(accounts, 0, &lo, true, &hi, true,
                             [&](RowId id, const Row& values) {
                               if (target == kInvalidRowId) {
                                 target = id;
                                 target_key = values[0].AsInt();
                                 target_balance = values[1].AsInt();
                               }
                               return true;
                             });
  if (st.ok() && target != kInvalidRowId) {
    st = ctx->Update(accounts, target,
                     {Value::Int(target_key),
                      Value::Int(target_balance + 1)});
  }
  out->exec_ok = st.ok();
  out->ctx = std::move(ctx);
}

/// `signature`, when non-null, accumulates one line per block with the
/// ordered commit/abort decisions and the block's write-set hash — the
/// byte-identical-across-configurations contract `--check-determinism`
/// enforces.
RunResult RunConfig(size_t stripes, size_t threads, size_t depth,
                    size_t partitions = 1,
                    std::string* signature = nullptr) {
#ifdef BRDB_SEED_BASELINE
  // Pre-change build (scripts/run_benches.sh compiles this bench against
  // the seed commit to produce the true before numbers): the seed
  // TxnManager has no striping knob — one mutex, period.
  (void)stripes;
  (void)partitions;
  (void)signature;
  Database db;
#else
  Database db{TxnManagerOptions{stripes, partitions}};
#endif
  Table* accounts = db.CreateTable(AccountsSchema()).value();
  {
    TxnContext seed(&db,
                    db.txn_manager()->Begin(
                        Snapshot::AtCsn(db.txn_manager()->CurrentCsn())),
                    TxnMode::kInternal);
    for (int i = 0; i < kRows; ++i) {
      (void)seed.Insert(accounts, {Value::Int(i), Value::Int(1000)});
    }
    (void)seed.CommitInternal(1);
  }

  RunResult result;
  Micros t0 = RealClock::Shared()->NowMicros();

  // Shared pipeline state: workers pull transactions (globally ordered by
  // block) and may run up to `depth` blocks ahead of the serial committer.
  constexpr size_t kTotal = static_cast<size_t>(kBlocks) * kBlockSize;
  std::mutex mu;
  std::condition_variable cv;
  BlockNum committed_block = 1;  // the seed "block"
  std::vector<int> remaining(kBlocks, kBlockSize);
  std::atomic<size_t> next_task{0};
  std::vector<std::vector<Executed>> executed(kBlocks);
  for (auto& v : executed) v.resize(kBlockSize);
  // Snapshots only reach back kSnapshotLag blocks, so deeper windows add
  // no legal overlap.
  const BlockNum overlap =
      static_cast<BlockNum>(std::min<size_t>(depth, kSnapshotLag));

  auto worker = [&] {
    for (;;) {
      size_t t = next_task.fetch_add(1);
      if (t >= kTotal) return;
      size_t bi = t / kBlockSize;
      BlockNum block = static_cast<BlockNum>(bi) + 2;
      BlockNum gate = block > overlap ? block - overlap : 1;
      {
        // Window admission: block B executes once B-depth committed (and
        // with it the B-4 snapshot it reads at). depth 1 = serial.
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return committed_block >= gate; });
      }
      ExecuteTxn(&db, accounts, block, static_cast<int>(t % kBlockSize),
                 partitions, &executed[bi][t % kBlockSize]);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--remaining[bi] == 0) cv.notify_all();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker);

  // Serial phase: block-order commit validation, as the paper requires.
  for (size_t bi = 0; bi < static_cast<size_t>(kBlocks); ++bi) {
    BlockNum block_num = static_cast<BlockNum>(bi) + 2;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return remaining[bi] == 0; });
    }
    std::vector<Executed>& entries = executed[bi];
    std::vector<TxnId> members;
    members.reserve(entries.size());
    for (const Executed& e : entries) members.push_back(e.ctx->id());
#ifndef BRDB_SEED_BASELINE
    std::vector<std::string> write_sets;
    if (signature != nullptr) {
      signature->append("block ");
      signature->append(std::to_string(block_num));
      signature->append(": ");
    }
#endif
    for (size_t pos = 0; pos < entries.size(); ++pos) {
      Executed& e = entries[pos];
      if (!e.exec_ok) {
        e.ctx->Abort(Status::Aborted("execution failed"));
        ++result.aborted;
#ifndef BRDB_SEED_BASELINE
        if (signature != nullptr) signature->push_back('-');
#endif
        continue;
      }
      Status st = e.ctx->CommitSerially(SsiPolicy::kBlockAware, block_num,
                                        static_cast<int>(pos), members);
      if (st.ok()) {
        ++result.committed;
#ifndef BRDB_SEED_BASELINE
        if (signature != nullptr) {
          write_sets.push_back(e.ctx->EncodeWriteSet());
          signature->push_back('+');
        }
#endif
      } else {
        ++result.aborted;
#ifndef BRDB_SEED_BASELINE
        if (signature != nullptr) signature->push_back('-');
#endif
      }
    }
#ifndef BRDB_SEED_BASELINE
    if (signature != nullptr) {
      signature->append(" ws=");
      signature->append(
          CheckpointManager::ComputeWriteSetHash(block_num, write_sets));
      signature->push_back('\n');
    }
#endif
    {
      std::lock_guard<std::mutex> lock(mu);
      committed_block = block_num;
    }
    cv.notify_all();
    db.txn_manager()->GarbageCollect();
  }
  for (auto& t : pool) t.join();

  result.seconds =
      static_cast<double>(RealClock::Shared()->NowMicros() - t0) / 1e6;
  return result;
}

struct Entry {
  std::string mode;
  size_t stripes;
  size_t threads;
  size_t depth;
  size_t partitions;
  RunResult r;
};

/// `scripts/check.sh` gate: the ordered commit/abort decisions AND the
/// per-block write-set hashes must be byte-identical across pipeline
/// depths and partition counts — pipelining may only change WHEN
/// transactions execute, partitioning only WHERE they validate; neither
/// may change what is decided or what state commits.
int CheckDeterminism() {
#ifdef BRDB_SEED_BASELINE
  // Seed tree: no partitions, no write-set encoding — counts only.
  const std::vector<size_t> depths = {1, 2, 4};
  const size_t threads = 4;
  bool ok = true;
  RunResult base;
  for (size_t i = 0; i < depths.size(); ++i) {
    RunResult r = RunConfig(/*stripes=*/0, threads, depths[i]);
    std::printf("depth %zu: committed %" PRIu64 " aborted %" PRIu64 "\n",
                depths[i], r.committed, r.aborted);
    if (i == 0) {
      base = r;
    } else if (r.committed != base.committed ||
               r.aborted != base.aborted) {
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: commit/abort counts diverge across pipeline "
                 "depths\n");
    return 1;
  }
  std::printf("determinism check passed: counts identical across depths "
              "{1, 2, 4}\n");
  return 0;
#else
  struct Config {
    size_t depth;
    size_t partitions;
  };
  const std::vector<Config> configs = {{1, 1}, {2, 1}, {4, 1}, {1, 2},
                                       {2, 2}, {1, 4}, {2, 4}};
  const size_t threads = 4;
  bool ok = true;
  std::string base_sig;
  RunResult base;
  for (size_t i = 0; i < configs.size(); ++i) {
    std::string sig;
    RunResult r = RunConfig(/*stripes=*/0, threads, configs[i].depth,
                            configs[i].partitions, &sig);
    std::printf("depth %zu partitions %zu: committed %" PRIu64
                " aborted %" PRIu64 "\n",
                configs[i].depth, configs[i].partitions, r.committed,
                r.aborted);
    if (i == 0) {
      base = r;
      base_sig = sig;
    } else if (sig != base_sig) {
      ok = false;
      std::fprintf(stderr,
                   "FAIL: decision/write-set signature diverges at depth "
                   "%zu partitions %zu (committed %" PRIu64 " vs %" PRIu64
                   ")\n",
                   configs[i].depth, configs[i].partitions, r.committed,
                   base.committed);
    }
  }
  if (!ok) return 1;
  std::printf(
      "determinism check passed: decisions and per-block write-set hashes "
      "byte-identical across depths {1, 2, 4} x partitions {1, 2, 4}\n");
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--check-determinism") == 0) {
    return CheckDeterminism();
  }
  const char* json_path = argc > 1 ? argv[1] : "BENCH_fig8b.json";
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};
  const unsigned host_cores = std::thread::hardware_concurrency();

  std::printf(
      "Figure 8(b): execute-order-in-parallel throughput vs executor "
      "threads (host cores: %u)\n",
      host_cores);
  std::printf("%-18s %-8s %-6s %-6s %-10s %-10s %-10s\n", "mode", "threads",
              "depth", "parts", "committed", "aborted", "tps");

  std::vector<Entry> entries;
#ifdef BRDB_SEED_BASELINE
  // The seed has neither striping nor a pipeline: one configuration axis.
  for (size_t threads : thread_counts) {
    entries.push_back({"seed_single_mutex", 1, threads, 1, 1, RunResult{}});
  }
#else
  for (size_t threads : thread_counts) {
    entries.push_back({"single_mutex", 1, threads, 1, 1, RunResult{}});
  }
  for (size_t depth : {size_t{1}, size_t{2}, size_t{4}}) {
    for (size_t threads : thread_counts) {
      entries.push_back({"striped", 0, threads, depth, 1, RunResult{}});
    }
  }
  for (size_t partitions : {size_t{2}, size_t{4}}) {
    for (size_t depth : {size_t{1}, size_t{4}}) {
      for (size_t threads : thread_counts) {
        entries.push_back(
            {"partitioned", 0, threads, depth, partitions, RunResult{}});
      }
    }
  }
#endif
  // Round-robin the repetitions across configurations so a slow window on
  // a shared machine cannot bias one configuration's whole sample.
  for (int rep = 0; rep < kRepetitions; ++rep) {
    for (Entry& e : entries) {
      RunResult r = RunConfig(e.stripes, e.threads, e.depth, e.partitions);
      if (r.tps() > e.r.tps()) e.r = r;
    }
  }
  for (const Entry& e : entries) {
    std::printf("%-18s %-8zu %-6zu %-6zu %-10" PRIu64 " %-10" PRIu64
                " %-10.0f\n",
                e.mode.c_str(), e.threads, e.depth, e.partitions,
                e.r.committed, e.r.aborted, e.r.tps());
  }
  std::fflush(stdout);

  auto tps_of = [&](const std::string& mode, size_t threads, size_t depth,
                    size_t partitions) -> double {
    for (const Entry& e : entries) {
      if (e.mode == mode && e.threads == threads && e.depth == depth &&
          e.partitions == partitions) {
        return e.r.tps();
      }
    }
    return 0;
  };
  double base4 = tps_of("single_mutex", 4, 1, 1);
  double striped4 = tps_of("striped", 4, 1, 1);
  double piped4 = tps_of("striped", 4, 4, 1);
  double part4 = tps_of("partitioned", 4, 4, 4);
  double speedup = base4 > 0 ? striped4 / base4 : 0;
  double pipe_speedup = striped4 > 0 ? piped4 / striped4 : 0;
  double part_speedup = piped4 > 0 ? part4 / piped4 : 0;
  std::printf("speedup at 4 threads (striped / single_mutex): %.2fx\n",
              speedup);
  std::printf("pipeline speedup at 4 threads (depth 4 / depth 1): %.2fx\n",
              pipe_speedup);
  std::printf(
      "partition speedup at 4 threads, depth 4 (4 partitions / "
      "unpartitioned): %.2fx\n",
      part_speedup);

  FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig8b_ordering_scalability\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f,
               "  \"workload\": {\"rows\": %d, \"scan_width\": %d, "
               "\"block_size\": %d, \"blocks\": %d, \"slices\": %d, "
               "\"snapshot_lag\": %d, \"hot_every\": %d},\n",
               kRows, kScanWidth, kBlockSize, kBlocks, kSlices,
               static_cast<int>(kSnapshotLag), kHotEvery);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"stripes\": %zu, \"threads\": "
                 "%zu, \"depth\": %zu, \"partitions\": %zu, \"committed\": "
                 "%" PRIu64 ", \"aborted\": %" PRIu64 ", \"tps\": %.1f}%s\n",
                 e.mode.c_str(), e.stripes, e.threads, e.depth,
                 e.partitions, e.r.committed, e.r.aborted, e.r.tps(),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_at_4_threads\": %.2f,\n", speedup);
  std::fprintf(f, "  \"pipeline_speedup_at_4_threads\": %.2f,\n",
               pipe_speedup);
  std::fprintf(f, "  \"partition_speedup_at_4_threads\": %.2f\n}\n",
               part_speedup);
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return 0;
}
