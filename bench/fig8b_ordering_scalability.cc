// Figure 8(b): ordering-service throughput vs number of orderer nodes,
// Kafka-style CFT vs PBFT-style BFT, measured on the ordering path alone
// (transactions delivered in blocks to a sink peer).
// Paper shape: Kafka throughput is flat in the orderer count; BFT falls
// (3000 -> 650 tps from 4 to 32 orderers) due to the O(n^2) message cost.
#include <condition_variable>

#include "bench_common.h"

using namespace brdb;
using namespace brdb::bench;

namespace {

/// Counts transactions arriving in blocks at a sink endpoint.
class TxSink {
 public:
  TxSink(SimNetwork* net, const std::string& name) {
    net->RegisterEndpoint(name, [this](const NetMessage& m) {
      if (m.type != kMsgBlock) return;
      auto block = Block::Decode(m.payload);
      if (!block.ok()) return;
      {
        std::lock_guard<std::mutex> lock(mu_);
        total_ += block.value().transactions().size();
      }
      cv_.notify_all();
    });
  }
  bool WaitForTotal(size_t n, Micros timeout_us) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
                        [&] { return total_ >= n; });
  }
  size_t total() {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  size_t total_ = 0;
};

std::vector<Identity> Orderers(size_t n) {
  std::vector<Identity> ids;
  for (size_t i = 0; i < n; ++i) {
    ids.push_back(Identity::Create("org" + std::to_string(i % 3 + 1),
                                   "orderer" + std::to_string(i + 1),
                                   PrincipalRole::kOrderer));
  }
  return ids;
}

double MeasureOrdering(bool bft, size_t n_orderers, int total_txns) {
  SimNetwork net(NetworkProfile::Lan());
  TxSink sink(&net, "peer:sink");
  OrdererConfig cfg;
  cfg.block_size = 100;
  cfg.block_timeout_us = 100000;

  std::unique_ptr<OrderingService> svc;
  if (bft) {
    svc = std::make_unique<PbftOrderingService>(cfg, &net,
                                                Orderers(n_orderers));
  } else {
    svc = std::make_unique<KafkaOrderingService>(cfg, &net,
                                                 Orderers(n_orderers));
  }
  svc->ConnectPeer("peer:sink");
  svc->Start();

  Identity client = Identity::Create("org1", "loadgen",
                                     PrincipalRole::kClient);
  Micros start = RealClock::Shared()->NowMicros();
  for (int i = 0; i < total_txns; ++i) {
    Transaction tx = Transaction::MakeOrderThenExecute(
        client, "tx-" + std::to_string(i), "simple", {Value::Int(i)});
    (void)svc->SubmitTransaction(tx);
  }
  bool done = sink.WaitForTotal(static_cast<size_t>(total_txns), 60000000);
  Micros end = RealClock::Shared()->NowMicros();
  svc->Stop();
  double secs = static_cast<double>(end - start) / 1e6;
  if (!done) return static_cast<double>(sink.total()) / secs;
  return static_cast<double>(total_txns) / secs;
}

}  // namespace

int main() {
  std::printf("Figure 8(b): ordering throughput vs orderer count\n");
  std::printf("%-10s %-16s %-16s\n", "orderers", "kafka_tps", "bft_tps");
  for (size_t n : {1, 4, 8, 16}) {
    double kafka = MeasureOrdering(false, n, 2000);
    double bft = MeasureOrdering(true, n, 1000);
    std::printf("%-10zu %-16.0f %-16.0f\n", n, kafka, bft);
    std::fflush(stdout);
  }
  return 0;
}
