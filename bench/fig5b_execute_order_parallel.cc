// Figure 5(b): throughput and latency vs arrival rate for the
// execute-order-in-parallel flow with the simple contract.
// Paper: peak throughput ~1.5x order-then-execute (2700 vs 1800 tps on
// their testbed) because execution overlaps ordering.
#include "bench_common.h"

using namespace brdb;
using namespace brdb::bench;

int main() {
  std::printf("Figure 5(b): execute-order-in-parallel, simple contract\n");
  std::printf("%-10s %-12s %-14s %-14s %-10s\n", "blocksize", "arrival_tps",
              "throughput", "latency_ms", "aborted");

  const size_t kBlockSizes[] = {10, 100, 500};
  const double kRates[] = {200, 400, 800, 1600, 3200};
  int key = 0;

  for (size_t bs : kBlockSizes) {
    auto net = BlockchainNetwork::Create(
        BenchOptions(TransactionFlow::kExecuteOrderParallel, bs));
    if (!RegisterWorkloadContracts(net.get()).ok() || !net->Start().ok()) {
      std::fprintf(stderr, "setup failed\n");
      return 1;
    }
    Client* client = net->CreateClient("org1", "loadgen");
    Status st = net->DeployContract(
        "CREATE TABLE kv (k INT PRIMARY KEY, payload TEXT)");
    if (!st.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n", st.ToString().c_str());
      return 1;
    }
    for (double rate : kRates) {
      int total = static_cast<int>(rate * 2);
      int base = key;
      key += total;
      LoadResult r = RunLoad(net.get(), client, "simple", rate, total,
                             [&](int i) { return SimpleArgs(base + i); });
      std::printf("%-10zu %-12.0f %-14.1f %-14.2f %-10" PRIu64 "\n", bs,
                  r.offered_tps, r.committed_tps, r.mean_latency_ms,
                  r.aborted);
      std::fflush(stdout);
    }
    net->Stop();
  }
  return 0;
}
