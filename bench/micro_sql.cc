// Micro benchmarks for the SQL engine: parsing, single-row DML, indexed
// point reads, joins and aggregation — the per-statement costs underlying
// the tet (transaction execution time) differences between the simple and
// complex contracts (§5.2).
#include <benchmark/benchmark.h>

#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "txn/txn_context.h"

namespace brdb {
namespace {

class SqlBench {
 public:
  SqlBench() : engine_(&db_) {
    TxnContext ddl(&db_, Begin(), TxnMode::kInternal);
    Exec(&ddl,
         "CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, "
         "balance INT)");
    Exec(&ddl, "CREATE INDEX idx_owner ON accounts (owner)");
    for (int i = 0; i < 1000; ++i) {
      Exec(&ddl, "INSERT INTO accounts VALUES (" + std::to_string(i) +
                     ", 'owner" + std::to_string(i % 50) + "', " +
                     std::to_string(i * 3) + ")");
    }
    ddl.CommitInternal(1);
  }

  TxnInfo* Begin() {
    return db_.txn_manager()->Begin(
        Snapshot::AtCsn(db_.txn_manager()->CurrentCsn()));
  }

  void Exec(TxnContext* ctx, const std::string& sql) {
    auto r = engine_.Execute(ctx, sql);
    if (!r.ok()) std::abort();
  }

  Database db_;
  sql::SqlEngine engine_;
};

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT a.owner, SUM(a.balance) AS total FROM accounts a "
      "WHERE a.id >= 10 AND a.id < 500 GROUP BY a.owner "
      "HAVING SUM(a.balance) > 100 ORDER BY total DESC LIMIT 5";
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql::Parse(sql));
  }
}
BENCHMARK(BM_ParseSelect);

void BM_IndexedPointSelect(benchmark::State& state) {
  SqlBench bench;
  int i = 0;
  for (auto _ : state) {
    TxnContext ctx(&bench.db_, bench.Begin(), TxnMode::kInternal);
    auto r = bench.engine_.Execute(
        &ctx, "SELECT balance FROM accounts WHERE id = $1",
        {Value::Int(i++ % 1000)});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexedPointSelect);

void BM_SecondaryIndexRange(benchmark::State& state) {
  SqlBench bench;
  for (auto _ : state) {
    TxnContext ctx(&bench.db_, bench.Begin(), TxnMode::kInternal);
    auto r = bench.engine_.Execute(
        &ctx, "SELECT COUNT(*) FROM accounts WHERE owner = 'owner7'");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SecondaryIndexRange);

void BM_GroupByAggregate(benchmark::State& state) {
  SqlBench bench;
  for (auto _ : state) {
    TxnContext ctx(&bench.db_, bench.Begin(), TxnMode::kInternal);
    auto r = bench.engine_.Execute(
        &ctx,
        "SELECT owner, SUM(balance) AS t FROM accounts GROUP BY owner "
        "ORDER BY t DESC LIMIT 1");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GroupByAggregate);

void BM_InsertCommit(benchmark::State& state) {
  SqlBench bench;
  int key = 1000000;
  BlockNum block = 100;
  for (auto _ : state) {
    TxnContext ctx(&bench.db_, bench.Begin(), TxnMode::kNormal);
    auto r = bench.engine_.Execute(
        &ctx, "INSERT INTO accounts VALUES ($1, 'new', 0)",
        {Value::Int(key++)});
    benchmark::DoNotOptimize(r);
    Status st = ctx.CommitSerially(SsiPolicy::kAbortDuringCommit, block++, 0,
                                   {ctx.id()});
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_InsertCommit);

void BM_JoinAggregate(benchmark::State& state) {
  SqlBench bench;
  {
    TxnContext ddl(&bench.db_, bench.Begin(), TxnMode::kInternal);
    bench.Exec(&ddl, "CREATE TABLE owners (name TEXT PRIMARY KEY, org TEXT)");
    for (int i = 0; i < 50; ++i) {
      bench.Exec(&ddl, "INSERT INTO owners VALUES ('owner" +
                           std::to_string(i) + "', 'org" +
                           std::to_string(i % 4) + "')");
    }
    ddl.CommitInternal(2);
  }
  for (auto _ : state) {
    TxnContext ctx(&bench.db_, bench.Begin(), TxnMode::kInternal);
    auto r = bench.engine_.Execute(
        &ctx,
        "SELECT o.org, SUM(a.balance) FROM accounts a "
        "JOIN owners o ON a.owner = o.name GROUP BY o.org ORDER BY o.org");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_JoinAggregate);

}  // namespace
}  // namespace brdb

BENCHMARK_MAIN();
