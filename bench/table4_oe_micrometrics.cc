// Table 4: order-then-execute micro metrics at a fixed arrival rate near
// saturation, across block sizes. Columns match the paper:
//   bs (block size), brr (blocks received/s), bpr (blocks processed/s),
//   bpt (block processing time ms), bet (block execution time ms),
//   bct (block commit time ms), tet (txn execution time ms),
//   su (system utilization %).
// Paper shape: larger blocks -> fewer blocks/s but bigger bpt; the sum of
// m small blocks' bpt exceeds one m-sized block's bpt; su near 100% at
// saturation.
#include "bench_common.h"

using namespace brdb;
using namespace brdb::bench;

int main() {
  std::printf("Table 4: order-then-execute micro metrics (simple contract)\n");
  std::printf("%-6s %-8s %-8s %-8s %-8s %-8s %-8s %-8s\n", "bs", "brr",
              "bpr", "bpt", "bet", "bct", "tet", "su%%");

  const size_t kBlockSizes[] = {10, 100, 500};
  const double kRate = 2400;  // near this host's saturation
  int key = 0;

  for (size_t bs : kBlockSizes) {
    auto net = BlockchainNetwork::Create(
        BenchOptions(TransactionFlow::kOrderThenExecute, bs));
    if (!RegisterWorkloadContracts(net.get()).ok() || !net->Start().ok()) {
      return 1;
    }
    Client* client = net->CreateClient("org1", "loadgen");
    if (!net->DeployContract("CREATE TABLE kv (k INT PRIMARY KEY, "
                             "payload TEXT)")
             .ok()) {
      return 1;
    }
    int total = static_cast<int>(kRate * 3);
    int base = key;
    key += total;
    LoadResult r = RunLoad(net.get(), client, "simple", kRate, total,
                           [&](int i) { return SimpleArgs(base + i); });
    std::printf("%-6zu %-8.1f %-8.1f %-8.2f %-8.2f %-8.2f %-8.3f %-8.1f\n",
                bs, r.node0.brr, r.node0.bpr, r.node0.bpt_ms, r.node0.bet_ms,
                r.node0.bct_ms, r.node0.tet_ms, r.node0.su);
    std::fflush(stdout);
    net->Stop();
  }
  return 0;
}
