// Recovery benchmark (crash-safe durability PR): build a durable chain
// with periodic state checkpoints, then measure cold-restart wall time and
// replayed-blocks/second as a function of the block suffix the restarting
// network must replay — newest checkpoint (short suffix) down to genesis
// (full replay). Emits BENCH_recovery.json.
//
// The acceptance bar: restarting from a checkpoint must be strictly faster
// than genesis replay whenever the suffix is <= 25% of the chain.
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/blockchain_network.h"

using namespace brdb;
namespace fs = std::filesystem;

namespace {

constexpr int kChainPuts = 60;              // ~64 blocks with governance
constexpr size_t kStateCheckpointEvery = 2;  // build-phase cadence
constexpr int kRepetitions = 3;              // keep the best (min wall)

NetworkOptions Options(size_t state_checkpoint_interval) {
  NetworkOptions opts;
  opts.flow = TransactionFlow::kOrderThenExecute;
  opts.orderer_type = OrdererType::kKafka;
  opts.orderer_config.block_size = 4;
  opts.orderer_config.block_timeout_us = 20000;
  opts.profile = NetworkProfile::Instant();
  opts.executor_threads = 4;
  opts.fsync_policy = FsyncPolicy::kAlways;
  opts.checkpoint_interval = 1;
  opts.state_checkpoint_interval = state_checkpoint_interval;
  return opts;
}

Status RegisterPut(BlockchainNetwork* net) {
  return net->RegisterNativeContract(
      "put", [](ContractContext* ctx) -> Status {
        auto r = ctx->Execute("INSERT INTO kv VALUES ($1, $2)", ctx->args());
        return r.ok() ? Status::OK() : r.status();
      });
}

std::vector<std::string> NodeStoreDirs(const std::string& dir) {
  return {dir + "/peer-org1.blocks", dir + "/peer-org2.blocks",
          dir + "/peer-org3.blocks"};
}

/// Reset every node's checkpoints/ from its stash, dropping checkpoints
/// above `max_height` (0 = no checkpoints at all: genesis replay).
void PrepareCheckpoints(const std::string& dir, BlockNum max_height) {
  for (const std::string& store : NodeStoreDirs(dir)) {
    fs::remove_all(store + "/checkpoints");
    if (max_height == 0) continue;
    fs::create_directories(store + "/checkpoints");
    std::error_code ec;
    for (const auto& entry :
         fs::directory_iterator(store + "/checkpoints.stash", ec)) {
      if (entry.path().extension() != ".ckpt") continue;
      BlockNum h = std::strtoull(entry.path().stem().c_str(), nullptr, 10);
      if (h > max_height) continue;
      fs::copy_file(entry.path(),
                    store + "/checkpoints/" + entry.path().filename().string());
    }
  }
}

struct RunResult {
  double wall_ms = 0;
  BlockNum restored_height = 0;
  BlockNum replayed = 0;
};

/// One measured cold restart over the prepared directories: open the
/// stores, restore the newest surviving checkpoint (if any), replay the
/// suffix, and wait until every node reaches `target_height`.
RunResult MeasureRestart(const std::string& dir, BlockNum target_height) {
  // A huge write interval keeps the restore path enabled (a writer must
  // exist) while guaranteeing the measured run never rewrites checkpoint
  // files the next scenario depends on.
  NetworkOptions opts = Options(/*state_checkpoint_interval=*/1000000);
  opts.block_store_dir = dir;
  auto t0 = std::chrono::steady_clock::now();
  auto net = BlockchainNetwork::Create(opts);
  if (!RegisterPut(net.get()).ok()) std::abort();
  // Deterministic identity: replayed signatures verify against it.
  (void)net->CreateClient("org1", "alice");
  if (!net->Start().ok()) std::abort();
  if (!net->WaitForHeight(target_height, 120000000).ok()) std::abort();
  auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.restored_height =
      net->node(0)->metrics()->Snapshot().restored_checkpoint_height;
  r.replayed = target_height - r.restored_height;
  net->Stop();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_recovery.json";
  const unsigned host_cores = std::thread::hardware_concurrency();
  const std::string dir =
      (fs::temp_directory_path() /
       ("brdb_recovery_bench_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  std::printf("recovery bench: building a durable chain (host cores: %u)\n",
              host_cores);
  BlockNum chain = 0;
  {
    NetworkOptions opts = Options(kStateCheckpointEvery);
    opts.block_store_dir = dir;
    auto net = BlockchainNetwork::Create(opts);
    if (!RegisterPut(net.get()).ok() || !net->Start().ok()) return 1;
    if (!net->DeployContract("CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
             .ok()) {
      return 1;
    }
    Client* alice = net->CreateClient("org1", "alice");
    for (int i = 0; i < kChainPuts; ++i) {
      auto t = alice->Invoke("put", {Value::Int(i), Value::Int(i * 3)});
      if (!t.ok() || !alice->WaitForCommit(t.value()).ok()) return 1;
    }
    net->WaitIdle();
    chain = net->node(0)->Height();
    if (!net->WaitForHeight(chain, 60000000).ok()) return 1;
    net->Stop();  // drains in-flight checkpoint captures, fsyncs the logs
  }
  for (const std::string& store : NodeStoreDirs(dir)) {
    fs::remove_all(store + "/checkpoints.stash");
    fs::copy(store + "/checkpoints", store + "/checkpoints.stash",
             fs::copy_options::recursive);
  }
  std::printf("chain: %llu blocks, checkpoints every %zu\n",
              static_cast<unsigned long long>(chain), kStateCheckpointEvery);

  struct Scenario {
    const char* name;
    double suffix_frac;  // fraction of the chain to replay (1.0 = genesis)
  };
  const Scenario scenarios[] = {
      {"suffix_10pct", 0.10}, {"suffix_25pct", 0.25}, {"suffix_50pct", 0.50},
      {"suffix_75pct", 0.75}, {"genesis", 1.0},
  };

  struct Row {
    std::string name;
    double suffix_frac;
    RunResult best;
  };
  std::vector<Row> rows;
  std::printf("%-14s %-16s %-10s %-10s %-12s\n", "scenario", "restored_at",
              "replayed", "wall_ms", "blocks/s");
  for (const Scenario& s : scenarios) {
    BlockNum target =
        s.suffix_frac >= 1.0
            ? 0
            : chain - static_cast<BlockNum>(s.suffix_frac * chain);
    PrepareCheckpoints(dir, target);
    RunResult best;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      RunResult r = MeasureRestart(dir, chain);
      if (rep == 0 || r.wall_ms < best.wall_ms) best = r;
    }
    double bps = best.replayed / (best.wall_ms / 1000.0);
    std::printf("%-14s %-16llu %-10llu %-10.1f %-12.1f\n", s.name,
                static_cast<unsigned long long>(best.restored_height),
                static_cast<unsigned long long>(best.replayed), best.wall_ms,
                bps);
    std::fflush(stdout);
    rows.push_back({s.name, s.suffix_frac, best});
  }
  fs::remove_all(dir);

  auto wall_of = [&](const char* name) -> double {
    for (const Row& r : rows) {
      if (r.name == name) return r.best.wall_ms;
    }
    return 0;
  };
  const double genesis_ms = wall_of("genesis");
  const double at25_ms = wall_of("suffix_25pct");
  const double at10_ms = wall_of("suffix_10pct");
  const bool faster_at_25 = at25_ms < genesis_ms;
  const bool faster_at_10 = at10_ms < genesis_ms;
  std::printf(
      "checkpointed restart vs genesis replay: 25%% suffix %.1f ms vs %.1f "
      "ms (%s), 10%% suffix %.1f ms (%s)\n",
      at25_ms, genesis_ms, faster_at_25 ? "faster" : "NOT FASTER", at10_ms,
      faster_at_10 ? "faster" : "NOT FASTER");

  FILE* f = std::fopen(json_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"recovery\",\n");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f,
               "  \"workload\": {\"chain_blocks\": %llu, "
               "\"state_checkpoint_every\": %zu, \"fsync_policy\": "
               "\"always\", \"repetitions\": %d},\n",
               static_cast<unsigned long long>(chain), kStateCheckpointEvery,
               kRepetitions);
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"suffix_frac\": %.2f, "
                 "\"restored_height\": %llu, \"blocks_replayed\": %llu, "
                 "\"recovery_wall_ms\": %.1f, \"blocks_per_sec\": %.1f}%s\n",
                 r.name.c_str(), r.suffix_frac,
                 static_cast<unsigned long long>(r.best.restored_height),
                 static_cast<unsigned long long>(r.best.replayed),
                 r.best.wall_ms,
                 r.best.replayed / (r.best.wall_ms / 1000.0),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"genesis_replay_ms\": %.1f,\n", genesis_ms);
  std::fprintf(f, "  \"checkpoint_faster_at_25pct_suffix\": %s,\n",
               faster_at_25 ? "true" : "false");
  std::fprintf(f, "  \"checkpoint_faster_at_10pct_suffix\": %s\n}\n",
               faster_at_10 ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path);
  return faster_at_25 && faster_at_10 ? 0 : 1;
}
