// §5.1 "Comparison with Ethereum's order then execute": the same
// order-then-execute pipeline with transactions executed and committed one
// at a time instead of concurrently via SSI.
// Paper: serial execution reaches only ~800 tps vs ~1800 tps, i.e. about
// 40% of the concurrent pipeline.
#include "bench_common.h"

using namespace brdb;
using namespace brdb::bench;

namespace {

double PeakThroughput(bool serial, int* key) {
  NetworkOptions opts =
      BenchOptions(TransactionFlow::kOrderThenExecute, /*block_size=*/100);
  opts.serial_execution = serial;
  auto net = BlockchainNetwork::Create(opts);
  if (!RegisterWorkloadContracts(net.get()).ok() || !net->Start().ok()) {
    return -1;
  }
  Client* client = net->CreateClient("org1", "loadgen");
  if (!net->DeployContract("CREATE TABLE kv (k INT PRIMARY KEY, "
                           "payload TEXT)")
           .ok()) {
    return -1;
  }
  double peak = 0;
  for (double rate : {800.0, 1600.0, 3200.0}) {
    int total = static_cast<int>(rate * 2);
    int base = *key;
    *key += total;
    LoadResult r = RunLoad(net.get(), client, "simple", rate, total,
                           [&](int i) { return SimpleArgs(base + i); });
    if (r.committed_tps > peak) peak = r.committed_tps;
  }
  net->Stop();
  return peak;
}

}  // namespace

int main() {
  std::printf("Ethereum-style serial baseline vs concurrent SSI execution\n");
  int key = 0;
  double concurrent = PeakThroughput(false, &key);
  double serial = PeakThroughput(true, &key);
  std::printf("%-24s %-14s\n", "mode", "peak_tps");
  std::printf("%-24s %-14.1f\n", "concurrent (SSI)", concurrent);
  std::printf("%-24s %-14.1f\n", "serial (Ethereum-style)", serial);
  if (concurrent > 0) {
    std::printf("serial/concurrent ratio: %.2f (paper: ~0.4)\n",
                serial / concurrent);
  }
  return 0;
}
