// Micro benchmarks for the crypto substrate: SHA-256, HMAC, Merkle trees,
// Schnorr signing/verification, transaction authentication.
#include <benchmark/benchmark.h>

#include "crypto/identity.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "wire/transaction.h"

namespace brdb {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  std::string msg(256, 'm');
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256("key", msg));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_MerkleBuild(benchmark::State& state) {
  std::vector<std::string> leaves;
  for (int i = 0; i < state.range(0); ++i) {
    leaves.push_back("writeset-" + std::to_string(i));
  }
  for (auto _ : state) {
    MerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.Root());
  }
}
BENCHMARK(BM_MerkleBuild)->Arg(10)->Arg(100)->Arg(500);

void BM_SchnorrSign(benchmark::State& state) {
  KeyPair kp = Schnorr::DeriveKeyPair("bench");
  std::string msg(196, 't');  // the paper's transaction size
  for (auto _ : state) {
    benchmark::DoNotOptimize(Schnorr::Sign(kp, msg));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  KeyPair kp = Schnorr::DeriveKeyPair("bench");
  std::string msg(196, 't');
  Signature sig = Schnorr::Sign(kp, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Schnorr::Verify(kp.public_key, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

void BM_TransactionAuthenticate(benchmark::State& state) {
  Identity alice = Identity::Create("org1", "alice", PrincipalRole::kClient);
  CertificateRegistry reg;
  reg.Register(alice.name, alice.organization, alice.role,
               alice.keys.public_key);
  Transaction tx = Transaction::MakeOrderThenExecute(
      alice, "tx-1", "simple", {Value::Int(1), Value::Text("payload")});
  for (auto _ : state) {
    benchmark::DoNotOptimize(tx.Authenticate(reg));
  }
}
BENCHMARK(BM_TransactionAuthenticate);

}  // namespace
}  // namespace brdb

BENCHMARK_MAIN();
