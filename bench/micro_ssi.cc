// Ablation micro benchmarks for the SSI machinery (DESIGN.md design-choice
// index): commit validation cost with and without conflicts, the overhead
// of SIREAD/predicate tracking, and index-range vs full-scan predicate
// reads (the paper's §4.3 reason for mandating index access in
// execute-order-in-parallel).
#include <benchmark/benchmark.h>

#include "storage/database.h"
#include "txn/txn_context.h"

namespace brdb {
namespace {

TableSchema AccountsSchema() {
  return TableSchema("accounts",
                     {{"id", ValueType::kInt, true, true, false, false},
                      {"balance", ValueType::kInt, false, false, false,
                       false}});
}

class SsiBench {
 public:
  SsiBench() {
    accounts_ = db_.CreateTable(AccountsSchema()).value();
    TxnContext seed(&db_, Begin(), TxnMode::kInternal);
    for (int i = 0; i < 1000; ++i) {
      (void)seed.Insert(accounts_, {Value::Int(i), Value::Int(100)});
    }
    (void)seed.CommitInternal(1);
  }

  TxnInfo* Begin() {
    return db_.txn_manager()->Begin(
        Snapshot::AtCsn(db_.txn_manager()->CurrentCsn()));
  }
  TxnInfo* BeginAt(BlockNum h) {
    return db_.txn_manager()->Begin(Snapshot::AtBlockHeight(h));
  }

  Database db_;
  Table* accounts_ = nullptr;
};

void BM_CommitValidationNoConflicts(benchmark::State& state) {
  SsiBench bench;
  BlockNum block = 10;
  int key = 10000;
  for (auto _ : state) {
    TxnContext ctx(&bench.db_, bench.Begin(), TxnMode::kNormal);
    (void)ctx.Insert(bench.accounts_, {Value::Int(key++), Value::Int(1)});
    Status st = ctx.CommitSerially(SsiPolicy::kAbortDuringCommit, block++, 0,
                                   {ctx.id()});
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_CommitValidationNoConflicts);

void BM_CommitValidationWithConflicts(benchmark::State& state) {
  // Write-skew pairs: every iteration validates a dangerous structure.
  SsiBench bench;
  BlockNum block = 10;
  for (auto _ : state) {
    TxnContext t1(&bench.db_, bench.Begin(), TxnMode::kNormal);
    TxnContext t2(&bench.db_, bench.Begin(), TxnMode::kNormal);
    Value k1 = Value::Int(1), k2 = Value::Int(2);
    RowId r1 = kInvalidRowId, r2 = kInvalidRowId;
    (void)t1.ScanRange(bench.accounts_, 0, &k1, true, &k1, true,
                       [&](RowId rid, const Row&) {
                         r1 = rid;
                         return true;
                       });
    (void)t2.ScanRange(bench.accounts_, 0, &k2, true, &k2, true,
                       [&](RowId rid, const Row&) {
                         r2 = rid;
                         return true;
                       });
    (void)t1.Update(bench.accounts_, r2, {Value::Int(2), Value::Int(0)});
    (void)t2.Update(bench.accounts_, r1, {Value::Int(1), Value::Int(0)});
    std::vector<TxnId> members = {t1.id(), t2.id()};
    Status s1 = t1.CommitSerially(SsiPolicy::kAbortDuringCommit, block, 0,
                                  members);
    Status s2 = t2.CommitSerially(SsiPolicy::kAbortDuringCommit, block, 1,
                                  members);
    ++block;
    benchmark::DoNotOptimize(s1);
    benchmark::DoNotOptimize(s2);
  }
}
BENCHMARK(BM_CommitValidationWithConflicts);

void BM_IndexRangePredicateScan(benchmark::State& state) {
  SsiBench bench;
  Value lo = Value::Int(100), hi = Value::Int(200);
  for (auto _ : state) {
    TxnContext ctx(&bench.db_, bench.Begin(), TxnMode::kNormal);
    int count = 0;
    (void)ctx.ScanRange(bench.accounts_, 0, &lo, true, &hi, true,
                        [&](RowId, const Row&) {
                          ++count;
                          return true;
                        });
    benchmark::DoNotOptimize(count);
    ctx.Abort(Status::Aborted("bench"));
  }
}
BENCHMARK(BM_IndexRangePredicateScan);

void BM_FullScanPredicate(benchmark::State& state) {
  SsiBench bench;
  for (auto _ : state) {
    TxnContext ctx(&bench.db_, bench.Begin(), TxnMode::kNormal);
    int count = 0;
    (void)ctx.ScanAll(bench.accounts_, [&](RowId, const Row&) {
      ++count;
      return true;
    });
    benchmark::DoNotOptimize(count);
    ctx.Abort(Status::Aborted("bench"));
  }
}
BENCHMARK(BM_FullScanPredicate);

void BM_BlockHeightVisibility(benchmark::State& state) {
  SsiBench bench;
  Value lo = Value::Int(0), hi = Value::Int(999);
  for (auto _ : state) {
    TxnContext ctx(&bench.db_, bench.BeginAt(1), TxnMode::kNormal);
    int count = 0;
    (void)ctx.ScanRange(bench.accounts_, 0, &lo, true, &hi, true,
                        [&](RowId, const Row&) {
                          ++count;
                          return true;
                        });
    benchmark::DoNotOptimize(count);
    ctx.Abort(Status::Aborted("bench"));
  }
}
BENCHMARK(BM_BlockHeightVisibility);

void BM_GarbageCollect(benchmark::State& state) {
  SsiBench bench;
  BlockNum block = 10;
  int key = 50000;
  for (auto _ : state) {
    for (int i = 0; i < 50; ++i) {
      TxnContext ctx(&bench.db_, bench.Begin(), TxnMode::kNormal);
      (void)ctx.Insert(bench.accounts_, {Value::Int(key++), Value::Int(1)});
      (void)ctx.CommitSerially(SsiPolicy::kAbortDuringCommit, block++, 0,
                               {ctx.id()});
    }
    benchmark::DoNotOptimize(bench.db_.txn_manager()->GarbageCollect());
  }
}
BENCHMARK(BM_GarbageCollect);

}  // namespace
}  // namespace brdb

BENCHMARK_MAIN();
