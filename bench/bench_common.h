// Shared harness for the paper-reproduction benchmarks.
//
// Provides the three evaluation smart contracts (§5: simple, complex-join,
// complex-group), schema deployment, an open-loop load generator that
// submits transactions at a fixed arrival rate, and latency/throughput
// accounting ("a transaction is committed in the network when a majority
// of nodes commit it").
//
// Scale note (DESIGN.md): the paper ran 3 orgs on 32-vCPU machines with a
// 1 s block timeout; this host is a single vCPU, so rates and timeouts are
// scaled down (~100 ms timeout). Absolute numbers are smaller; the shapes
// the paper reports are what EXPERIMENTS.md compares.
#ifndef BRDB_BENCH_BENCH_COMMON_H_
#define BRDB_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "contracts/workload_contracts.h"
#include "core/blockchain_network.h"

namespace brdb {
namespace bench {

inline NetworkOptions BenchOptions(TransactionFlow flow, size_t block_size,
                                   Micros block_timeout_us = 100000) {
  NetworkOptions opts;
  opts.flow = flow;
  opts.orderer_type = OrdererType::kKafka;
  opts.orderer_config.block_size = block_size;
  opts.orderer_config.block_timeout_us = block_timeout_us;
  opts.profile = NetworkProfile::Lan();
  opts.executor_threads = 8;
  return opts;
}

/// The paper's §5 workload contracts (shared with brdb_noded — see
/// contracts/workload_contracts.h).
inline Status RegisterWorkloadContracts(BlockchainNetwork* net) {
  for (size_t i = 0; i < net->num_nodes(); ++i) {
    BRDB_RETURN_NOT_OK(
        ::brdb::RegisterWorkloadContracts(net->node(i)->contracts()));
  }
  return Status::OK();
}

/// Deploy the evaluation schema and seed the join tables.
inline Status DeployWorkloadSchema(BlockchainNetwork* net, Client* seeder,
                                   int num_customers = 20,
                                   int num_orders = 100) {
  for (const std::string& stmt : WorkloadSchemaStatements()) {
    BRDB_RETURN_NOT_OK(net->DeployContract(stmt));
  }

  static const char* kRegions[] = {"emea", "amer", "apac", "latam"};
  std::vector<std::string> txids;
  for (int i = 0; i < num_customers; ++i) {
    auto t = seeder->Invoke("seed_customer",
                            {Value::Int(i), Value::Text(kRegions[i % 4])});
    if (!t.ok()) return t.status();
    txids.push_back(t.value());
  }
  for (int i = 0; i < num_orders; ++i) {
    auto t = seeder->Invoke(
        "seed_order",
        {Value::Int(i), Value::Int(i % num_customers), Value::Int(10 + i % 90)});
    if (!t.ok()) return t.status();
    txids.push_back(t.value());
  }
  for (const auto& t : txids) {
    BRDB_RETURN_NOT_OK(seeder->WaitForDecisionOnAllNodes(t, 30000000));
  }
  return Status::OK();
}

/// Tracks per-transaction latency to majority commit. Created through
/// Create(): node subscriptions capture shared ownership, because
/// notifications can still fire after the load loop returns (late blocks,
/// node shutdown) — a raw `this` capture would dangle.
class LatencyTracker {
 public:
  explicit LatencyTracker(size_t majority) : majority_(majority) {}

  static std::shared_ptr<LatencyTracker> Create(BlockchainNetwork* net) {
    auto tracker =
        std::make_shared<LatencyTracker>(net->num_nodes() / 2 + 1);
    for (size_t i = 0; i < net->num_nodes(); ++i) {
      net->node(i)->Subscribe([tracker](const TxnNotification& n) {
        tracker->OnDecision(n);
      });
    }
    return tracker;
  }

  /// Record a submission. `scheduled_us` is the *intended* send instant of
  /// the open-loop schedule, not the actual one: measuring from the actual
  /// submit time hides coordinated omission — when the system stalls, the
  /// generator falls behind and the queueing delay every stalled
  /// transaction suffered vanishes from the percentiles. 0 (tests,
  /// closed-loop callers) falls back to now.
  void OnSubmit(const std::string& txid, Micros scheduled_us = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    submit_us_[txid] =
        scheduled_us != 0 ? scheduled_us : RealClock::Shared()->NowMicros();
  }

  struct Stats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    double mean_latency_ms = 0;
    double p50_latency_ms = 0;
    double p95_latency_ms = 0;
    double p99_latency_ms = 0;
  };

  Stats Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.committed = committed_;
    s.aborted = aborted_;
    if (committed_ > 0) {
      s.mean_latency_ms =
          static_cast<double>(latency_us_total_) / 1000.0 /
          static_cast<double>(committed_);
    }
    std::vector<uint64_t> sorted = latencies_us_;
    std::sort(sorted.begin(), sorted.end());
    s.p50_latency_ms = PercentileMs(sorted, 50);
    s.p95_latency_ms = PercentileMs(sorted, 95);
    s.p99_latency_ms = PercentileMs(sorted, 99);
    return s;
  }

  /// Nearest-rank percentile over an already-sorted sample of microsecond
  /// latencies, in milliseconds. 0 when the sample is empty.
  static double PercentileMs(const std::vector<uint64_t>& sorted_us,
                             double pct) {
    if (sorted_us.empty()) return 0;
    size_t rank = static_cast<size_t>(
        std::max(1.0, std::ceil(pct / 100.0 *
                                static_cast<double>(sorted_us.size()))));
    return static_cast<double>(sorted_us[rank - 1]) / 1000.0;
  }

 private:
  void OnDecision(const TxnNotification& n) {
    std::lock_guard<std::mutex> lock(mu_);
    auto sub = submit_us_.find(n.txid);
    if (sub == submit_us_.end()) return;  // bootstrap traffic
    auto& prog = progress_[n.txid];
    if (n.status.ok()) {
      if (++prog.commits == majority_) {
        ++committed_;
        uint64_t latency_us = static_cast<uint64_t>(
            RealClock::Shared()->NowMicros() - sub->second);
        latency_us_total_ += latency_us;
        latencies_us_.push_back(latency_us);
      }
    } else {
      if (++prog.aborts == majority_) ++aborted_;
    }
  }

  struct Progress {
    size_t commits = 0;
    size_t aborts = 0;
  };

  size_t majority_;
  mutable std::mutex mu_;
  std::map<std::string, Micros> submit_us_;
  std::map<std::string, Progress> progress_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  uint64_t latency_us_total_ = 0;
  std::vector<uint64_t> latencies_us_;  ///< per-commit, submission order
};

struct LoadResult {
  double offered_tps = 0;
  double committed_tps = 0;
  double mean_latency_ms = 0;
  double p50_latency_ms = 0;
  double p95_latency_ms = 0;
  double p99_latency_ms = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  MetricsSnapshot node0;
};

/// Open-loop generator: submit `total` transactions at `rate` tps, then
/// wait for the network to drain. `make_args` builds each call's argument
/// list from the sequence number.
template <typename MakeArgs>
LoadResult RunLoad(BlockchainNetwork* net, Client* client,
                   const std::string& contract, double rate, int total,
                   MakeArgs make_args) {
  auto tracker_ptr = LatencyTracker::Create(net);
  LatencyTracker& tracker = *tracker_ptr;
  const auto& clock = RealClock::Shared();
  net->node(0)->metrics()->Reset();

  Micros start = clock->NowMicros();
  Micros gap = static_cast<Micros>(1e6 / rate);
  for (int i = 0; i < total; ++i) {
    Micros target = start + static_cast<Micros>(i) * gap;
    Micros now = clock->NowMicros();
    if (target > now) clock->SleepMicros(target - now);
    auto t = client->Invoke(contract, make_args(i));
    // Latency is measured from the scheduled start (`target`), not from
    // the post-Invoke clock: the open-loop contract is that transaction i
    // *should* have been sent at start + i*gap, and any generator lag is
    // system-induced queueing the percentiles must include.
    if (t.ok()) tracker.OnSubmit(t.value(), target);
  }
  Micros submit_end = clock->NowMicros();
  net->WaitIdle(300000, 60000000);
  Micros drain_end = clock->NowMicros();

  LoadResult r;
  auto stats = tracker.Snapshot();
  double submit_s = static_cast<double>(submit_end - start) / 1e6;
  double total_s = static_cast<double>(drain_end - start) / 1e6;
  r.offered_tps = static_cast<double>(total) / submit_s;
  r.committed_tps = static_cast<double>(stats.committed) / total_s;
  r.mean_latency_ms = stats.mean_latency_ms;
  r.p50_latency_ms = stats.p50_latency_ms;
  r.p95_latency_ms = stats.p95_latency_ms;
  r.p99_latency_ms = stats.p99_latency_ms;
  r.committed = stats.committed;
  r.aborted = stats.aborted;
  r.node0 = net->node(0)->metrics()->Snapshot();
  return r;
}

inline std::vector<Value> SimpleArgs(int i) {
  return {Value::Int(i), Value::Text("payload-" + std::to_string(i) +
                                     std::string(64, 'x'))};
}

}  // namespace bench
}  // namespace brdb

#endif  // BRDB_BENCH_BENCH_COMMON_H_
