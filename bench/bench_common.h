// Shared harness for the paper-reproduction benchmarks.
//
// Provides the three evaluation smart contracts (§5: simple, complex-join,
// complex-group), schema deployment, an open-loop load generator that
// submits transactions at a fixed arrival rate, and latency/throughput
// accounting ("a transaction is committed in the network when a majority
// of nodes commit it").
//
// Scale note (DESIGN.md): the paper ran 3 orgs on 32-vCPU machines with a
// 1 s block timeout; this host is a single vCPU, so rates and timeouts are
// scaled down (~100 ms timeout). Absolute numbers are smaller; the shapes
// the paper reports are what EXPERIMENTS.md compares.
#ifndef BRDB_BENCH_BENCH_COMMON_H_
#define BRDB_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "contracts/workload_contracts.h"
#include "core/blockchain_network.h"

namespace brdb {
namespace bench {

inline NetworkOptions BenchOptions(TransactionFlow flow, size_t block_size,
                                   Micros block_timeout_us = 100000) {
  NetworkOptions opts;
  opts.flow = flow;
  opts.orderer_type = OrdererType::kKafka;
  opts.orderer_config.block_size = block_size;
  opts.orderer_config.block_timeout_us = block_timeout_us;
  opts.profile = NetworkProfile::Lan();
  opts.executor_threads = 8;
  return opts;
}

/// The paper's §5 workload contracts (shared with brdb_noded — see
/// contracts/workload_contracts.h).
inline Status RegisterWorkloadContracts(BlockchainNetwork* net) {
  for (size_t i = 0; i < net->num_nodes(); ++i) {
    BRDB_RETURN_NOT_OK(
        ::brdb::RegisterWorkloadContracts(net->node(i)->contracts()));
  }
  return Status::OK();
}

/// Deploy the evaluation schema and seed the join tables.
inline Status DeployWorkloadSchema(BlockchainNetwork* net, Client* seeder,
                                   int num_customers = 20,
                                   int num_orders = 100) {
  for (const std::string& stmt : WorkloadSchemaStatements()) {
    BRDB_RETURN_NOT_OK(net->DeployContract(stmt));
  }

  static const char* kRegions[] = {"emea", "amer", "apac", "latam"};
  std::vector<std::string> txids;
  for (int i = 0; i < num_customers; ++i) {
    auto t = seeder->Invoke("seed_customer",
                            {Value::Int(i), Value::Text(kRegions[i % 4])});
    if (!t.ok()) return t.status();
    txids.push_back(t.value());
  }
  for (int i = 0; i < num_orders; ++i) {
    auto t = seeder->Invoke(
        "seed_order",
        {Value::Int(i), Value::Int(i % num_customers), Value::Int(10 + i % 90)});
    if (!t.ok()) return t.status();
    txids.push_back(t.value());
  }
  for (const auto& t : txids) {
    BRDB_RETURN_NOT_OK(seeder->WaitForDecisionOnAllNodes(t, 30000000));
  }
  return Status::OK();
}

/// Tracks per-transaction latency to majority commit. Created through
/// Create(): node subscriptions capture shared ownership, because
/// notifications can still fire after the load loop returns (late blocks,
/// node shutdown) — a raw `this` capture would dangle.
class LatencyTracker {
 public:
  explicit LatencyTracker(size_t majority) : majority_(majority) {}

  static std::shared_ptr<LatencyTracker> Create(BlockchainNetwork* net) {
    auto tracker =
        std::make_shared<LatencyTracker>(net->num_nodes() / 2 + 1);
    for (size_t i = 0; i < net->num_nodes(); ++i) {
      net->node(i)->Subscribe([tracker](const TxnNotification& n) {
        tracker->OnDecision(n);
      });
    }
    return tracker;
  }

  /// Record a submission. `scheduled_us` is the *intended* send instant of
  /// the open-loop schedule, not the actual one: measuring from the actual
  /// submit time hides coordinated omission — when the system stalls, the
  /// generator falls behind and the queueing delay every stalled
  /// transaction suffered vanishes from the percentiles. 0 (tests,
  /// closed-loop callers) falls back to now.
  void OnSubmit(const std::string& txid, Micros scheduled_us = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    submit_us_[txid] =
        scheduled_us != 0 ? scheduled_us : RealClock::Shared()->NowMicros();
  }

  struct Stats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    double mean_latency_ms = 0;
    double p50_latency_ms = 0;
    double p95_latency_ms = 0;
    double p99_latency_ms = 0;
  };

  Stats Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.committed = committed_;
    s.aborted = aborted_;
    if (committed_ > 0) {
      s.mean_latency_ms =
          static_cast<double>(latency_us_total_) / 1000.0 /
          static_cast<double>(committed_);
    }
    std::vector<uint64_t> sorted = latencies_us_;
    std::sort(sorted.begin(), sorted.end());
    s.p50_latency_ms = PercentileMs(sorted, 50);
    s.p95_latency_ms = PercentileMs(sorted, 95);
    s.p99_latency_ms = PercentileMs(sorted, 99);
    return s;
  }

  /// Nearest-rank percentile over an already-sorted sample of microsecond
  /// latencies, in milliseconds. 0 when the sample is empty.
  static double PercentileMs(const std::vector<uint64_t>& sorted_us,
                             double pct) {
    if (sorted_us.empty()) return 0;
    size_t rank = static_cast<size_t>(
        std::max(1.0, std::ceil(pct / 100.0 *
                                static_cast<double>(sorted_us.size()))));
    return static_cast<double>(sorted_us[rank - 1]) / 1000.0;
  }

 private:
  void OnDecision(const TxnNotification& n) {
    std::lock_guard<std::mutex> lock(mu_);
    auto sub = submit_us_.find(n.txid);
    if (sub == submit_us_.end()) return;  // bootstrap traffic
    auto& prog = progress_[n.txid];
    if (n.status.ok()) {
      if (++prog.commits == majority_) {
        ++committed_;
        uint64_t latency_us = static_cast<uint64_t>(
            RealClock::Shared()->NowMicros() - sub->second);
        latency_us_total_ += latency_us;
        latencies_us_.push_back(latency_us);
      }
    } else {
      if (++prog.aborts == majority_) ++aborted_;
    }
  }

  struct Progress {
    size_t commits = 0;
    size_t aborts = 0;
  };

  size_t majority_;
  mutable std::mutex mu_;
  std::map<std::string, Micros> submit_us_;
  std::map<std::string, Progress> progress_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  uint64_t latency_us_total_ = 0;
  std::vector<uint64_t> latencies_us_;  ///< per-commit, submission order
};

struct LoadResult {
  double offered_tps = 0;
  double committed_tps = 0;
  double mean_latency_ms = 0;
  double p50_latency_ms = 0;
  double p95_latency_ms = 0;
  double p99_latency_ms = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  MetricsSnapshot node0;
};

/// Open-loop generator: submit `total` transactions at `rate` tps, then
/// wait for the network to drain. `make_args` builds each call's argument
/// list from the sequence number.
template <typename MakeArgs>
LoadResult RunLoad(BlockchainNetwork* net, Client* client,
                   const std::string& contract, double rate, int total,
                   MakeArgs make_args) {
  auto tracker_ptr = LatencyTracker::Create(net);
  LatencyTracker& tracker = *tracker_ptr;
  const auto& clock = RealClock::Shared();
  net->node(0)->metrics()->Reset();

  Micros start = clock->NowMicros();
  Micros gap = static_cast<Micros>(1e6 / rate);
  for (int i = 0; i < total; ++i) {
    Micros target = start + static_cast<Micros>(i) * gap;
    Micros now = clock->NowMicros();
    if (target > now) clock->SleepMicros(target - now);
    auto t = client->Invoke(contract, make_args(i));
    // Latency is measured from the scheduled start (`target`), not from
    // the post-Invoke clock: the open-loop contract is that transaction i
    // *should* have been sent at start + i*gap, and any generator lag is
    // system-induced queueing the percentiles must include.
    if (t.ok()) tracker.OnSubmit(t.value(), target);
  }
  Micros submit_end = clock->NowMicros();
  net->WaitIdle(300000, 60000000);
  Micros drain_end = clock->NowMicros();

  LoadResult r;
  auto stats = tracker.Snapshot();
  double submit_s = static_cast<double>(submit_end - start) / 1e6;
  double total_s = static_cast<double>(drain_end - start) / 1e6;
  r.offered_tps = static_cast<double>(total) / submit_s;
  r.committed_tps = static_cast<double>(stats.committed) / total_s;
  r.mean_latency_ms = stats.mean_latency_ms;
  r.p50_latency_ms = stats.p50_latency_ms;
  r.p95_latency_ms = stats.p95_latency_ms;
  r.p99_latency_ms = stats.p99_latency_ms;
  r.committed = stats.committed;
  r.aborted = stats.aborted;
  r.node0 = net->node(0)->metrics()->Snapshot();
  return r;
}

inline std::vector<Value> SimpleArgs(int i) {
  return {Value::Int(i), Value::Text("payload-" + std::to_string(i) +
                                     std::string(64, 'x'))};
}

// ---- HTAP analytics harness (columnar ledger history, ROADMAP item 3) ----
//
// After an OLTP phase builds committed history, the same analytical SELECT
// is timed on both execution paths of DatabaseNode::Query — kForceRow (the
// legacy MVCC row-store scan) and kDefault (vectorized scan over sealed
// columnar segments + row-store tail) — and compared byte for byte.

struct AnalyticsStats {
  double tps = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  uint64_t rows = 0;  ///< result rows across all iterations
};

/// Time `iters` executions of `sql` (params rotating per iteration) on one
/// query path. Closed-loop: analytics queries are client-synchronous, so
/// scheduled-instant accounting does not apply here.
inline Result<AnalyticsStats> RunAnalyticsPath(
    DatabaseNode* node, const std::string& user, const std::string& sql,
    const std::vector<std::vector<Value>>& params, int iters,
    QueryPath path) {
  const auto& clock = RealClock::Shared();
  std::vector<uint64_t> lat_us;
  lat_us.reserve(static_cast<size_t>(iters));
  AnalyticsStats s;
  Micros t0 = clock->NowMicros();
  for (int i = 0; i < iters; ++i) {
    Micros q0 = clock->NowMicros();
    auto r = node->Query(user, sql,
                         params[static_cast<size_t>(i) % params.size()],
                         path);
    if (!r.ok()) return r.status();
    lat_us.push_back(static_cast<uint64_t>(clock->NowMicros() - q0));
    s.rows += r.value().rows.size();
  }
  double wall_s = static_cast<double>(clock->NowMicros() - t0) / 1e6;
  s.tps = wall_s > 0 ? static_cast<double>(iters) / wall_s : 0;
  uint64_t total = 0;
  for (uint64_t us : lat_us) total += us;
  s.mean_ms = static_cast<double>(total) / 1000.0 /
              static_cast<double>(lat_us.size());
  std::sort(lat_us.begin(), lat_us.end());
  s.p50_ms = LatencyTracker::PercentileMs(lat_us, 50);
  s.p95_ms = LatencyTracker::PercentileMs(lat_us, 95);
  s.p99_ms = LatencyTracker::PercentileMs(lat_us, 99);
  return s;
}

/// Byte-identical comparison of the two query paths at the current
/// (quiesced) snapshot height. Any divergence — status, column names, row
/// count, or any row's encoding — is an InternalError naming the first
/// mismatch.
inline Status CheckQueryParity(DatabaseNode* node, const std::string& user,
                               const std::string& sql,
                               const std::vector<Value>& params) {
  auto row = node->Query(user, sql, params, QueryPath::kForceRow);
  auto col = node->Query(user, sql, params, QueryPath::kDefault);
  if (row.ok() != col.ok()) {
    return Status::Internal(
        "parity: status diverged for \"" + sql + "\": row=" +
        (row.ok() ? "OK" : row.status().ToString()) + " columnar=" +
        (col.ok() ? "OK" : col.status().ToString()));
  }
  if (!row.ok()) return Status::OK();  // both failed identically by class
  const sql::ResultSet& a = row.value();
  const sql::ResultSet& b = col.value();
  if (a.columns != b.columns) {
    return Status::Internal("parity: column names diverged for \"" +
                                 sql + "\"");
  }
  if (a.rows.size() != b.rows.size()) {
    return Status::Internal(
        "parity: row count diverged for \"" + sql + "\": row-store " +
        std::to_string(a.rows.size()) + " vs columnar " +
        std::to_string(b.rows.size()));
  }
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (EncodeRow(a.rows[i]) != EncodeRow(b.rows[i])) {
      auto row_str = [](const Row& r) {
        std::string s = "(";
        for (size_t j = 0; j < r.size(); ++j) {
          if (j > 0) s += ", ";
          s += r[j].ToString();
        }
        return s + ")";
      };
      std::string extra;
      if (std::getenv("PARITY_DEBUG") != nullptr) {
        std::multiset<std::string> ea, eb;
        for (const Row& r : a.rows) ea.insert(r[0].ToString());
        for (const Row& r : b.rows) eb.insert(r[0].ToString());
        extra = "; only-row-store {";
        for (const auto& k : ea) {
          auto it = eb.find(k);
          if (it != eb.end()) { eb.erase(it); continue; }
          extra += k + " ";
        }
        extra += "} only-columnar {";
        for (const auto& k : eb) extra += k + " ";
        extra += "}";
      }
      return Status::Internal("parity: row " + std::to_string(i) +
                              " diverged for \"" + sql + "\": row-store " +
                              row_str(a.rows[i]) + " vs columnar " +
                              row_str(b.rows[i]) + extra);
    }
  }
  return Status::OK();
}

/// One figure's analytics workload: the timed query plus the parity query
/// list (each with rotating parameter sets).
struct AnalyticsBench {
  const char* name;  ///< "fig6" / "fig7"
  std::string measured_sql;
  std::vector<std::vector<Value>> measured_params;
  std::vector<std::pair<std::string, std::vector<std::vector<Value>>>>
      parity_queries;
};

inline NetworkOptions AnalyticsOptions(size_t block_size,
                                       size_t segment_blocks) {
  // Single-org network: the analytics split is node-local, and seeding
  // history once instead of three times keeps the bench fast.
  NetworkOptions opts =
      BenchOptions(TransactionFlow::kOrderThenExecute, block_size, 50000);
  opts.orgs = {"org1"};
  opts.analytics_segment_blocks = segment_blocks;
  return opts;
}

/// Build committed history (customers + orders via the seed procedures),
/// quiesce, and force-seal everything up to the committed height so the
/// measured columnar run reads sealed segments, not the row-store tail.
inline Status BuildAnalyticsHistory(BlockchainNetwork* net, Client* seeder,
                                    int customers, int orders) {
  BRDB_RETURN_NOT_OK(DeployWorkloadSchema(net, seeder, customers, orders));
  net->WaitIdle(200000, 120000000);
  DatabaseNode* node = net->node(0);
  if (node->history_builder() != nullptr &&
      !node->history_builder()->WaitForWatermark(node->Height())) {
    return Status::Internal("history builder did not reach the commit "
                            "frontier");
  }
  return Status::OK();
}

/// The measured row-vs-columnar comparison; writes BENCH_<name>.json.
/// Returns 1 (process exit code) on any failure.
inline int RunAnalyticsPhase(const AnalyticsBench& spec,
                             const std::string& json_path) {
  int customers = 100;
  int orders = 4000;
  if (const char* env = std::getenv("ANALYTICS_ORDERS")) {
    int v = std::atoi(env);
    if (v > 0) orders = v;
  }
  auto net = BlockchainNetwork::Create(AnalyticsOptions(200, 0));
  if (!net->Start().ok()) return 1;
  Client* seeder = net->CreateClient("org1", "seeder");
  Status st = BuildAnalyticsHistory(net.get(), seeder, customers, orders);
  if (!st.ok()) {
    std::fprintf(stderr, "history build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  DatabaseNode* node = net->node(0);
  const std::string user = "seeder";

  // Warm both paths (plan cache, first-touch allocations).
  for (int i = 0; i < 5; ++i) {
    auto a = node->Query(user, spec.measured_sql, spec.measured_params[0],
                         QueryPath::kForceRow);
    auto b = node->Query(user, spec.measured_sql, spec.measured_params[0],
                         QueryPath::kDefault);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "warmup failed: %s\n",
                   (!a.ok() ? a.status() : b.status()).ToString().c_str());
      return 1;
    }
  }

  // Interleave measurement windows so both paths sample the same noise;
  // keep the best round per path.
  const int iters = 200;
  AnalyticsStats row_best, col_best;
  for (int round = 0; round < 2; ++round) {
    auto row = RunAnalyticsPath(node, user, spec.measured_sql,
                                spec.measured_params, iters,
                                QueryPath::kForceRow);
    auto col = RunAnalyticsPath(node, user, spec.measured_sql,
                                spec.measured_params, iters,
                                QueryPath::kDefault);
    if (!row.ok() || !col.ok()) {
      std::fprintf(stderr, "measurement failed: %s\n",
                   (!row.ok() ? row.status() : col.status())
                       .ToString().c_str());
      return 1;
    }
    if (row.value().tps > row_best.tps) row_best = row.value();
    if (col.value().tps > col_best.tps) col_best = col.value();
  }
  if (row_best.rows != col_best.rows) {
    std::fprintf(stderr, "result cardinality diverged between paths\n");
    return 1;
  }

  // Parity spot-check at the measured height (the full multi-height gate
  // is --check-parity / the parity test).
  for (const auto& [sql, param_sets] : spec.parity_queries) {
    for (const auto& p : param_sets) {
      Status parity = CheckQueryParity(node, user, sql, p);
      if (!parity.ok()) {
        std::fprintf(stderr, "%s\n", parity.ToString().c_str());
        return 1;
      }
    }
  }

  MetricsSnapshot m = node->metrics()->Snapshot();
  double speedup = row_best.tps > 0 ? col_best.tps / row_best.tps : 0;
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) return 1;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s_analytics\",\n", spec.name);
  std::fprintf(f, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"customers\": %d,\n  \"orders\": %d,\n", customers,
               orders);
  std::fprintf(f, "  \"height\": %" PRIu64 ",\n",
               static_cast<uint64_t>(node->Height()));
  std::fprintf(f, "  \"segments_sealed\": %" PRIu64 ",\n",
               m.columnar_segments_sealed);
  std::fprintf(f, "  \"builder_lag\": %" PRIu64 ",\n", m.columnar_builder_lag);
  std::fprintf(f, "  \"vectorized_scans\": %" PRIu64 ",\n",
               m.vectorized_scans);
  std::fprintf(f, "  \"row_fallback_scans\": %" PRIu64 ",\n",
               m.row_fallback_scans);
  std::fprintf(f, "  \"zone_map_pruned_segments\": %" PRIu64 ",\n",
               m.zone_map_pruned_segments);
  std::fprintf(f, "  \"iters_per_round\": %d,\n", iters);
  auto emit_path = [&](const char* key, const AnalyticsStats& s,
                       bool last) {
    std::fprintf(f,
                 "  \"%s\": {\"tps\": %.1f, \"mean_ms\": %.3f, "
                 "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n",
                 key, s.tps, s.mean_ms, s.p50_ms, s.p95_ms, s.p99_ms,
                 last ? "" : ",");
  };
  emit_path("row_store", row_best, false);
  emit_path("columnar", col_best, false);
  std::fprintf(f, "  \"columnar_speedup\": %.2f\n}\n", speedup);
  std::fclose(f);
  std::printf("%s analytics: row %.1f qps, columnar %.1f qps -> %.2fx "
              "(sealed segments: %" PRIu64 ", wrote %s)\n",
              spec.name, row_best.tps, col_best.tps, speedup,
              m.columnar_segments_sealed, json_path.c_str());
  net->Stop();
  return 0;
}

/// The --check-parity gate: grow history in stages and compare the two
/// paths byte for byte at each stage's snapshot height — some stages with
/// the watermark caught up (pure sealed reads), some with the builder
/// lagging (sealed + row-store tail). Non-zero exit on any divergence.
inline int RunParityGate(const AnalyticsBench& spec) {
  const int kStages = 4;
  const int kCustomersPerStage = 25;
  const int kOrdersPerStage = 150;
  auto net = BlockchainNetwork::Create(AnalyticsOptions(20, 4));
  if (!net->Start().ok()) return 1;
  Client* seeder = net->CreateClient("org1", "seeder");
  for (const std::string& stmt : WorkloadSchemaStatements()) {
    if (!net->DeployContract(stmt).ok()) return 1;
  }
  DatabaseNode* node = net->node(0);
  const std::string user = "seeder";
  static const char* kRegions[] = {"emea", "amer", "apac", "latam"};
  int failures = 0;
  uint64_t last_vectorized = 0;
  for (int stage = 0; stage < kStages; ++stage) {
    std::vector<std::string> txids;
    for (int i = 0; i < kCustomersPerStage; ++i) {
      int id = stage * kCustomersPerStage + i;
      auto t = seeder->Invoke(
          "seed_customer", {Value::Int(id), Value::Text(kRegions[id % 4])});
      if (t.ok()) txids.push_back(t.value());
    }
    for (int i = 0; i < kOrdersPerStage; ++i) {
      int id = stage * kOrdersPerStage + i;
      auto t = seeder->Invoke(
          "seed_order",
          {Value::Int(id), Value::Int(id % ((stage + 1) * kCustomersPerStage)),
           Value::Int(10 + id % 90)});
      if (t.ok()) txids.push_back(t.value());
    }
    for (const auto& t : txids) {
      seeder->WaitForDecisionOnAllNodes(t, 30000000);
    }
    net->WaitIdle(150000, 60000000);
    // Even stages: force the watermark to the commit frontier (pure sealed
    // reads). Odd stages: leave the builder wherever it is, so the scan
    // mixes sealed segments with the row-store tail.
    if (stage % 2 == 0 && node->history_builder() != nullptr) {
      node->history_builder()->WaitForWatermark(node->Height());
    }
    for (const auto& [sql, param_sets] : spec.parity_queries) {
      for (const auto& p : param_sets) {
        Status st = CheckQueryParity(node, user, sql, p);
        if (!st.ok()) {
          std::fprintf(stderr, "stage %d (height %" PRIu64 "): %s\n", stage,
                       static_cast<uint64_t>(node->Height()),
                       st.ToString().c_str());
          ++failures;
        }
      }
    }
    uint64_t vectorized = node->metrics()->Snapshot().vectorized_scans;
    if (vectorized <= last_vectorized) {
      std::fprintf(stderr,
                   "stage %d: columnar path not engaged (vectorized_scans "
                   "stuck at %" PRIu64 ") — parity gate would be vacuous\n",
                   stage, vectorized);
      ++failures;
    }
    last_vectorized = vectorized;
  }
  net->Stop();
  if (failures > 0) {
    std::fprintf(stderr, "%s parity gate: %d failure(s)\n", spec.name,
                 failures);
    return 1;
  }
  std::printf("%s parity gate: row and columnar paths byte-identical at "
              "every stage\n", spec.name);
  return 0;
}

}  // namespace bench
}  // namespace brdb

#endif  // BRDB_BENCH_BENCH_COMMON_H_
