// Figure 8(a): single-cloud (LAN) vs multi-cloud (WAN) deployment for both
// flows with the complex-join contract.
// Paper shape: WAN adds ~100 ms latency but throughput is essentially
// unchanged (blocks are ~100 KB; bandwidth is not the bottleneck).
#include "bench_common.h"

using namespace brdb;
using namespace brdb::bench;

namespace {

LoadResult RunOne(TransactionFlow flow, NetworkProfile profile, int* key) {
  NetworkOptions opts = BenchOptions(flow, /*block_size=*/50);
  opts.profile = profile;
  auto net = BlockchainNetwork::Create(opts);
  LoadResult bad;
  if (!RegisterWorkloadContracts(net.get()).ok() || !net->Start().ok()) {
    return bad;
  }
  Client* client = net->CreateClient("org1", "loadgen");
  Client* seeder = net->CreateClient("org1", "seeder");
  if (!DeployWorkloadSchema(net.get(), seeder).ok()) return bad;
  static const char* kRegions[] = {"emea", "amer", "apac", "latam"};
  const double rate = 100;
  int total = static_cast<int>(rate * 2);
  int base = *key;
  *key += total;
  LoadResult r = RunLoad(net.get(), client, "complex_join", rate, total,
                         [&](int i) {
                           return std::vector<Value>{
                               Value::Int(base + i),
                               Value::Text(kRegions[(base + i) % 4])};
                         });
  net->Stop();
  return r;
}

}  // namespace

int main() {
  std::printf("Figure 8(a): single-cloud (LAN) vs multi-cloud (WAN)\n");
  std::printf("%-26s %-10s %-14s %-14s\n", "flow", "profile", "throughput",
              "latency_ms");
  int key = 3000000;
  struct Case {
    TransactionFlow flow;
    const char* name;
  };
  for (const Case& c : {Case{TransactionFlow::kOrderThenExecute, "OE"},
                        Case{TransactionFlow::kExecuteOrderParallel, "EOP"}}) {
    LoadResult lan = RunOne(c.flow, NetworkProfile::Lan(), &key);
    LoadResult wan = RunOne(c.flow, NetworkProfile::Wan(), &key);
    std::printf("%-26s %-10s %-14.1f %-14.2f\n", c.name, "LAN",
                lan.committed_tps, lan.mean_latency_ms);
    std::printf("%-26s %-10s %-14.1f %-14.2f\n", c.name, "WAN",
                wan.committed_tps, wan.mean_latency_ms);
    std::printf("%-26s latency increase: %.2f ms (paper: ~100 ms)\n", c.name,
                wan.mean_latency_ms - lan.mean_latency_ms);
    std::fflush(stdout);
  }
  return 0;
}
