// Figure 8(a): single-cloud (LAN) vs multi-cloud (WAN) deployment for both
// flows with the complex-join contract.
// Paper shape: WAN adds ~100 ms latency but throughput is essentially
// unchanged (blocks are ~100 KB; bandwidth is not the bottleneck).
//
// This port runs the workload over REAL loopback TCP sockets — one
// OrdererProcess plus four NodeProcesses (the exact objects brdb_noded
// wraps, and what scripts/run_cluster.sh runs as five OS processes), with
// a TcpTransport-backed Session as the load generator — alongside the
// simulated LAN and WAN profiles for the paper's deployment contrast.
// Results, including per-request commit-latency percentiles, are written
// to BENCH_fig8a.json (path overridable via a positional argument).
//
// With `--peers-file=<path>` the load generator instead dials a LIVE
// external cluster — the peers file scripts/run_cluster.sh prints on
// stdout — and runs one case against it (transport label "tcp-external").
// `--flow=ote|eop` must match the cluster's flow and `--orgs=` its org
// list (identities are derived, not exchanged, so both sides must agree
// on the layout); the cluster must be fresh, since the bench deploys the
// evaluation schema. Without the flag the in-process loopback cluster
// remains the default ("tcp-loopback").
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_common.h"
#include "network/cluster.h"

using namespace brdb;
using namespace brdb::bench;

namespace {

constexpr double kRate = 100;     // offered load, tx/s
constexpr int kTotal = 200;       // transactions per case
constexpr size_t kBlockSize = 50;
constexpr Micros kBlockTimeoutUs = 100'000;
static const char* kRegions[] = {"emea", "amer", "apac", "latam"};

struct CaseResult {
  std::string transport;  ///< "tcp-loopback" | "tcp-external" | "sim-*"
  std::string flow;       ///< "OE" | "EOP"
  LoadResult load;
  bool ok = false;
};

// ---------------------------------------------------------------------------
// Simulated-profile cases (the original LAN vs WAN contrast).
// ---------------------------------------------------------------------------

CaseResult RunSimCase(TransactionFlow flow, const char* flow_name,
                      NetworkProfile profile, const char* profile_name,
                      int* key) {
  CaseResult out;
  out.transport = profile_name;
  out.flow = flow_name;
  NetworkOptions opts = BenchOptions(flow, kBlockSize, kBlockTimeoutUs);
  opts.profile = profile;
  auto net = BlockchainNetwork::Create(opts);
  if (!RegisterWorkloadContracts(net.get()).ok() || !net->Start().ok()) {
    return out;
  }
  Client* client = net->CreateClient("org1", "loadgen");
  Client* seeder = net->CreateClient("org1", "seeder");
  if (!DeployWorkloadSchema(net.get(), seeder).ok()) return out;
  int base = *key;
  *key += kTotal;
  out.load = RunLoad(net.get(), client, "complex_join", kRate, kTotal,
                     [&](int i) {
                       return std::vector<Value>{
                           Value::Int(base + i),
                           Value::Text(kRegions[(base + i) % 4])};
                     });
  net->Stop();
  out.ok = true;
  return out;
}

// ---------------------------------------------------------------------------
// Real-socket case: in-process loopback cluster over network/cluster.h.
// ---------------------------------------------------------------------------

/// Majority-commit latency tracker over a Transport decision subscription —
/// the socket twin of bench_common.h's LatencyTracker (which hooks
/// BlockchainNetwork nodes directly).
class SocketLatencyTracker {
 public:
  explicit SocketLatencyTracker(size_t peers) : majority_(peers / 2 + 1) {}

  static std::shared_ptr<SocketLatencyTracker> Create(Transport* transport) {
    auto tracker =
        std::make_shared<SocketLatencyTracker>(transport->peer_count());
    tracker->sub_ = transport->Subscribe(
        [tracker](const std::string&, const TxnNotification& n) {
          tracker->OnDecision(n);
        });
    return tracker;
  }

  /// `scheduled_us` is the intended open-loop send instant (coordinated
  /// omission: generator lag is system queueing the percentiles must
  /// include). 0 falls back to now.
  void OnSubmit(const std::string& txid, Micros scheduled_us = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    submit_us_[txid] =
        scheduled_us != 0 ? scheduled_us : RealClock::Shared()->NowMicros();
  }

  LatencyTracker::Stats Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    LatencyTracker::Stats s;
    s.committed = committed_;
    s.aborted = aborted_;
    if (committed_ > 0) {
      s.mean_latency_ms = static_cast<double>(latency_us_total_) / 1000.0 /
                          static_cast<double>(committed_);
    }
    std::vector<uint64_t> sorted = latencies_us_;
    std::sort(sorted.begin(), sorted.end());
    s.p50_latency_ms = LatencyTracker::PercentileMs(sorted, 50);
    s.p95_latency_ms = LatencyTracker::PercentileMs(sorted, 95);
    s.p99_latency_ms = LatencyTracker::PercentileMs(sorted, 99);
    return s;
  }

 private:
  void OnDecision(const TxnNotification& n) {
    std::lock_guard<std::mutex> lock(mu_);
    auto sub = submit_us_.find(n.txid);
    if (sub == submit_us_.end()) return;  // deploy/seed traffic
    auto& prog = progress_[n.txid];
    if (n.status.ok()) {
      if (++prog.commits == majority_) {
        ++committed_;
        uint64_t latency_us = static_cast<uint64_t>(
            RealClock::Shared()->NowMicros() - sub->second);
        latency_us_total_ += latency_us;
        latencies_us_.push_back(latency_us);
      }
    } else {
      if (++prog.aborts == majority_) ++aborted_;
    }
  }

  struct Progress {
    size_t commits = 0;
    size_t aborts = 0;
  };

  size_t majority_;
  uint64_t sub_ = 0;
  mutable std::mutex mu_;
  std::map<std::string, Micros> submit_us_;
  std::map<std::string, Progress> progress_;
  uint64_t committed_ = 0;
  uint64_t aborted_ = 0;
  uint64_t latency_us_total_ = 0;
  std::vector<uint64_t> latencies_us_;
};

/// One OrdererProcess + one NodeProcess per org on ephemeral loopback
/// ports — the library-level equivalent of scripts/run_cluster.sh.
class SocketCluster {
 public:
  explicit SocketCluster(TransactionFlow flow) : flow_(flow) {}
  ~SocketCluster() { Stop(); }

  Status Start() {
    OrdererProcessOptions oopts;
    oopts.layout = layout_;
    oopts.type = ClusterOrdererType::kSolo;
    oopts.config.block_size = kBlockSize;
    oopts.config.block_timeout_us = kBlockTimeoutUs;
    oopts.expected_peers = layout_.orgs.size();
    orderer_ = std::make_unique<OrdererProcess>(oopts);
    BRDB_RETURN_NOT_OK(orderer_->StartServer());

    for (size_t i = 0; i < layout_.orgs.size(); ++i) {
      NodeProcessOptions nopts;
      nopts.layout = layout_;
      nopts.node_index = i;
      nopts.flow = flow_;
      auto node = std::make_unique<NodeProcess>(std::move(nopts));
      BRDB_RETURN_NOT_OK(node->StartServer());
      BRDB_RETURN_NOT_OK(RegisterWorkloadContracts(node->node()->contracts()));
      nodes_.push_back(std::move(node));
    }
    for (size_t i = 0; i < nodes_.size(); ++i) {
      std::vector<TcpPeerAddress> others;
      for (size_t j = 0; j < nodes_.size(); ++j) {
        if (j == i) continue;
        others.push_back(TcpPeerAddress{nodes_[j]->name(), "127.0.0.1",
                                        nodes_[j]->port()});
      }
      BRDB_RETURN_NOT_OK(nodes_[i]->ConnectAndStart(
          "127.0.0.1", orderer_->port(), std::move(others)));
    }
    return orderer_->WaitPeersAndStartOrdering();
  }

  void Stop() {
    for (auto& node : nodes_) {
      if (node) node->Stop();
    }
    if (orderer_) orderer_->Stop();
  }

  std::shared_ptr<TcpTransport> MakeTransport(const Identity& as) {
    TcpTransportOptions topts;
    topts.client_name = as.name;
    topts.client_keys = as.keys;
    topts.registry = BuildClusterIdentities(layout_).registry;
    topts.flow = flow_;
    for (auto& node : nodes_) {
      topts.peers.push_back(
          TcpPeerAddress{node->name(), "127.0.0.1", node->port()});
    }
    auto transport = std::make_shared<TcpTransport>(std::move(topts));
    if (!transport->Start().ok()) return nullptr;
    return transport;
  }

  const ClusterLayout& layout() const { return layout_; }
  NodeProcess* node(size_t i) { return nodes_[i].get(); }

 private:
  TransactionFlow flow_;
  ClusterLayout layout_;  // org1..org4, 1 orderer
  std::unique_ptr<OrdererProcess> orderer_;
  std::vector<std::unique_ptr<NodeProcess>> nodes_;
};

/// §3.7 governance deploy of the evaluation schema, then join-table
/// seeding — the socket equivalent of bench_common.h's
/// DeployWorkloadSchema, over Sessions instead of a BlockchainNetwork.
Status DeploySchemaOverSockets(const std::vector<Session*>& admins,
                               Session* seeder, int num_customers = 20,
                               int num_orders = 100) {
  for (const std::string& stmt : WorkloadSchemaStatements()) {
    BRDB_RETURN_NOT_OK(DeployContractOverSessions(admins, stmt));
  }
  std::vector<TxnHandle> handles;
  for (int i = 0; i < num_customers; ++i) {
    handles.push_back(seeder->Submit(
        "seed_customer", {Value::Int(i), Value::Text(kRegions[i % 4])}));
  }
  for (int i = 0; i < num_orders; ++i) {
    handles.push_back(seeder->Submit(
        "seed_order", {Value::Int(i), Value::Int(i % num_customers),
                       Value::Int(10 + i % 90)}));
  }
  for (TxnHandle& h : handles) {
    BRDB_RETURN_NOT_OK(h.submit_status());
    BRDB_RETURN_NOT_OK(h.WaitAllNodes(30'000'000));
  }
  return Status::OK();
}

/// Offered-rate load loop shared by the in-process and external socket
/// cases: paced complex_join submissions, majority-commit latencies from
/// the transport's decision subscription, drain, stats into `out->load`.
void RunLoadOverTransport(Session* client, Transport* transport, int* key,
                          CaseResult* out) {
  auto tracker = SocketLatencyTracker::Create(transport);
  const auto& clock = RealClock::Shared();
  int base = *key;
  *key += kTotal;

  Micros start = clock->NowMicros();
  Micros gap = static_cast<Micros>(1e6 / kRate);
  std::vector<TxnHandle> handles;
  for (int i = 0; i < kTotal; ++i) {
    Micros target = start + static_cast<Micros>(i) * gap;
    Micros now = clock->NowMicros();
    if (target > now) clock->SleepMicros(target - now);
    TxnHandle h = client->Submit(
        "complex_join", {Value::Int(base + i),
                         Value::Text(kRegions[(base + i) % 4])});
    if (h.submit_status().ok()) {
      tracker->OnSubmit(h.txid(), target);
      handles.push_back(std::move(h));
    }
  }
  Micros submit_end = clock->NowMicros();
  // Drain: a majority decision on every submitted transaction. The tracker
  // timestamps commits as notifications arrive, so waiting in submission
  // order does not skew the latency samples.
  for (TxnHandle& h : handles) (void)h.Wait(30'000'000);
  Micros drain_end = clock->NowMicros();

  auto stats = tracker->Snapshot();
  double submit_s = static_cast<double>(submit_end - start) / 1e6;
  double total_s = static_cast<double>(drain_end - start) / 1e6;
  out->load.offered_tps = static_cast<double>(kTotal) / submit_s;
  out->load.committed_tps = static_cast<double>(stats.committed) / total_s;
  out->load.mean_latency_ms = stats.mean_latency_ms;
  out->load.p50_latency_ms = stats.p50_latency_ms;
  out->load.p95_latency_ms = stats.p95_latency_ms;
  out->load.p99_latency_ms = stats.p99_latency_ms;
  out->load.committed = stats.committed;
  out->load.aborted = stats.aborted;
}

CaseResult RunSocketCase(TransactionFlow flow, const char* flow_name,
                         int* key) {
  CaseResult out;
  out.transport = "tcp-loopback";
  out.flow = flow_name;

  SocketCluster cluster(flow);
  if (!cluster.Start().ok()) return out;
  ClusterIdentities ids = BuildClusterIdentities(cluster.layout());
  auto transport = cluster.MakeTransport(ids.clients[0]);
  if (!transport || !transport->WaitReady(10'000'000)) return out;

  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<Session*> admins;
  for (const Identity& admin : ids.admins) {
    sessions.push_back(std::make_unique<Session>(admin, transport));
    admins.push_back(sessions.back().get());
  }
  Session client(ids.clients[0], transport);
  if (!DeploySchemaOverSockets(admins, &client).ok()) {
    cluster.Stop();
    return out;
  }

  cluster.node(0)->node()->metrics()->Reset();
  RunLoadOverTransport(&client, transport.get(), key, &out);
  out.load.node0 = cluster.node(0)->node()->metrics()->Snapshot();

  transport.reset();
  sessions.clear();
  cluster.Stop();
  out.ok = true;
  return out;
}

// ---------------------------------------------------------------------------
// External-cluster case: dial a live scripts/run_cluster.sh cluster.
// ---------------------------------------------------------------------------

/// Parse a run_cluster.sh peers file ("<name> <port>" per line; the
/// cluster is loopback, so every address is 127.0.0.1). Orderer lines are
/// dropped: the load generator only speaks to the nodes.
std::vector<TcpPeerAddress> ReadPeersFile(const std::string& path) {
  std::ifstream in(path);
  std::vector<TcpPeerAddress> nodes;
  std::string name;
  long port;
  while (in >> name >> port) {
    if (name.rfind("orderer-", 0) == 0) continue;
    nodes.push_back(
        TcpPeerAddress{name, "127.0.0.1", static_cast<uint16_t>(port)});
  }
  return nodes;
}

CaseResult RunExternalCase(TransactionFlow flow, const char* flow_name,
                           const ClusterLayout& layout,
                           std::vector<TcpPeerAddress> peers, int* key) {
  CaseResult out;
  out.transport = "tcp-external";
  out.flow = flow_name;

  // Same derived identity set as the external brdb_noded processes:
  // BuildClusterIdentities is a pure function of the layout, so agreeing
  // on the org list is all it takes to authenticate.
  ClusterIdentities ids = BuildClusterIdentities(layout);
  TcpTransportOptions topts;
  topts.client_name = ids.clients[0].name;
  topts.client_keys = ids.clients[0].keys;
  topts.registry = ids.registry;
  topts.flow = flow;
  topts.peers = std::move(peers);
  auto transport = std::make_shared<TcpTransport>(std::move(topts));
  if (!transport->Start().ok() || !transport->WaitReady(10'000'000)) {
    std::fprintf(stderr, "cannot reach the external cluster\n");
    return out;
  }

  std::vector<std::unique_ptr<Session>> sessions;
  std::vector<Session*> admins;
  for (const Identity& admin : ids.admins) {
    sessions.push_back(std::make_unique<Session>(admin, transport));
    admins.push_back(sessions.back().get());
  }
  Session client(ids.clients[0], transport);
  if (!DeploySchemaOverSockets(admins, &client).ok()) {
    std::fprintf(stderr,
                 "schema deploy failed (is the cluster fresh, and do "
                 "--flow/--orgs match it?)\n");
    return out;
  }

  RunLoadOverTransport(&client, transport.get(), key, &out);
  out.ok = true;
  return out;
}

// ---------------------------------------------------------------------------
// JSON report.
// ---------------------------------------------------------------------------

void WriteJson(const std::string& path, const std::vector<CaseResult>& cases) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"figure\": \"8a\",\n";
  out << "  \"workload\": \"complex_join\",\n";
  out << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"offered_rate_tps\": " << kRate << ",\n";
  out << "  \"transactions_per_case\": " << kTotal << ",\n";
  out << "  \"block_size\": " << kBlockSize << ",\n";
  out << "  \"block_timeout_us\": " << kBlockTimeoutUs << ",\n";
  out << "  \"cases\": [\n";
  for (size_t i = 0; i < cases.size(); ++i) {
    const CaseResult& c = cases[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"transport\": \"%s\", \"flow\": \"%s\", \"ok\": %s, "
        "\"offered_tps\": %.1f, \"committed_tps\": %.1f, "
        "\"committed\": %" PRIu64 ", \"aborted\": %" PRIu64 ", "
        "\"latency_ms\": {\"mean\": %.2f, \"p50\": %.2f, \"p95\": %.2f, "
        "\"p99\": %.2f}}%s",
        c.transport.c_str(), c.flow.c_str(), c.ok ? "true" : "false",
        c.load.offered_tps, c.load.committed_tps, c.load.committed,
        c.load.aborted, c.load.mean_latency_ms, c.load.p50_latency_ms,
        c.load.p95_latency_ms, c.load.p99_latency_ms,
        i + 1 < cases.size() ? "," : "");
    out << buf << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

void PrintCase(const CaseResult& c) {
  std::printf("%-4s %-14s %-10.1f %-10.2f %-10.2f %-10.2f %-10.2f\n",
              c.flow.c_str(), c.transport.c_str(), c.load.committed_tps,
              c.load.mean_latency_ms, c.load.p50_latency_ms,
              c.load.p95_latency_ms, c.load.p99_latency_ms);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_fig8a.json";
  std::string peers_file;
  std::string flow_arg = "ote";
  std::string orgs_arg;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--peers-file=", 0) == 0) {
      peers_file = a.substr(13);
    } else if (a.rfind("--flow=", 0) == 0) {
      flow_arg = a.substr(7);
    } else if (a.rfind("--orgs=", 0) == 0) {
      orgs_arg = a.substr(7);
    } else {
      json_path = a;
    }
  }
  int key = 3000000;

  if (!peers_file.empty()) {
    ClusterLayout layout;
    if (!orgs_arg.empty()) {
      layout.orgs.clear();
      std::stringstream ss(orgs_arg);
      std::string org;
      while (std::getline(ss, org, ',')) {
        if (!org.empty()) layout.orgs.push_back(org);
      }
    }
    TransactionFlow flow = flow_arg == "eop"
                               ? TransactionFlow::kExecuteOrderParallel
                               : TransactionFlow::kOrderThenExecute;
    const char* flow_name = flow_arg == "eop" ? "EOP" : "OE";
    std::vector<TcpPeerAddress> peers = ReadPeersFile(peers_file);
    if (peers.empty()) {
      std::fprintf(stderr, "no node entries in %s\n", peers_file.c_str());
      return 1;
    }
    std::printf("Figure 8(a): load against external cluster (%zu nodes, "
                "%s)\n",
                peers.size(), flow_name);
    std::printf("%-4s %-14s %-10s %-10s %-10s %-10s %-10s\n", "flow",
                "transport", "tps", "mean_ms", "p50_ms", "p95_ms",
                "p99_ms");
    std::vector<CaseResult> cases;
    cases.push_back(
        RunExternalCase(flow, flow_name, layout, std::move(peers), &key));
    PrintCase(cases.back());
    WriteJson(json_path, cases);
    std::printf("wrote %s\n", json_path.c_str());
    return cases.back().ok ? 0 : 1;
  }

  std::printf("Figure 8(a): loopback TCP vs simulated LAN/WAN deployment\n");
  std::printf("%-4s %-14s %-10s %-10s %-10s %-10s %-10s\n", "flow",
              "transport", "tps", "mean_ms", "p50_ms", "p95_ms", "p99_ms");
  std::vector<CaseResult> cases;
  struct Case {
    TransactionFlow flow;
    const char* name;
  };
  for (const Case& c : {Case{TransactionFlow::kOrderThenExecute, "OE"},
                        Case{TransactionFlow::kExecuteOrderParallel, "EOP"}}) {
    cases.push_back(RunSocketCase(c.flow, c.name, &key));
    PrintCase(cases.back());
    cases.push_back(RunSimCase(c.flow, c.name, NetworkProfile::Lan(),
                               "sim-lan", &key));
    PrintCase(cases.back());
    cases.push_back(RunSimCase(c.flow, c.name, NetworkProfile::Wan(),
                               "sim-wan", &key));
    PrintCase(cases.back());
    const LoadResult& lan = cases[cases.size() - 2].load;
    const LoadResult& wan = cases.back().load;
    std::printf("%-4s WAN latency increase: %.2f ms (paper: ~100 ms)\n",
                c.name, wan.mean_latency_ms - lan.mean_latency_ms);
    std::fflush(stdout);
  }
  WriteJson(json_path, cases);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
