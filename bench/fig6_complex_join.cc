// Figure 6: peak throughput and micro metrics (bpt, bet, tet) vs block
// size for the complex-join contract (join two tables, aggregate, insert
// the result into a third), for both flows.
// Paper shape: throughput far below the simple contract (tet grows ~160x);
// execute-order-in-parallel reaches about twice order-then-execute's peak
// because execution overlaps ordering.
#include "bench_common.h"

using namespace brdb;
using namespace brdb::bench;

namespace {

void RunFlow(TransactionFlow flow, const char* label, int* key) {
  std::printf("-- %s --\n", label);
  std::printf("%-10s %-14s %-8s %-8s %-8s\n", "blocksize", "peak_tps", "bpt",
              "bet", "tet");
  static const char* kRegions[] = {"emea", "amer", "apac", "latam"};
  for (size_t bs : {10, 50, 100}) {
    auto net = BlockchainNetwork::Create(BenchOptions(flow, bs));
    if (!RegisterWorkloadContracts(net.get()).ok() || !net->Start().ok()) {
      return;
    }
    Client* client = net->CreateClient("org1", "loadgen");
    Client* seeder = net->CreateClient("org1", "seeder");
    if (!DeployWorkloadSchema(net.get(), seeder).ok()) {
      std::fprintf(stderr, "schema deploy failed\n");
      return;
    }
    double peak = 0;
    MetricsSnapshot at_peak;
    for (double rate : {100.0, 200.0, 400.0}) {
      int total = static_cast<int>(rate * 2);
      int base = *key;
      *key += total;
      LoadResult r = RunLoad(
          net.get(), client, "complex_join", rate, total, [&](int i) {
            return std::vector<Value>{
                Value::Int(base + i),
                Value::Text(kRegions[(base + i) % 4])};
          });
      if (r.committed_tps > peak) {
        peak = r.committed_tps;
        at_peak = r.node0;
      }
    }
    std::printf("%-10zu %-14.1f %-8.2f %-8.2f %-8.3f\n", bs, peak,
                at_peak.bpt_ms, at_peak.bet_ms, at_peak.tet_ms);
    std::fflush(stdout);
    net->Stop();
  }
}

}  // namespace

int main() {
  std::printf("Figure 6: complex-join contract\n");
  int key = 1000000;  // result-table keys; disjoint from seed data
  RunFlow(TransactionFlow::kOrderThenExecute, "(a) order-then-execute", &key);
  RunFlow(TransactionFlow::kExecuteOrderParallel,
          "(b) execute-order-in-parallel", &key);
  return 0;
}
