// Figure 6: peak throughput and micro metrics (bpt, bet, tet) vs block
// size for the complex-join contract (join two tables, aggregate, insert
// the result into a third), for both flows.
// Paper shape: throughput far below the simple contract (tet grows ~160x);
// execute-order-in-parallel reaches about twice order-then-execute's peak
// because execution overlaps ordering.
#include "bench_common.h"

using namespace brdb;
using namespace brdb::bench;

namespace {

void RunFlow(TransactionFlow flow, const char* label, int* key) {
  std::printf("-- %s --\n", label);
  std::printf("%-10s %-14s %-8s %-8s %-8s\n", "blocksize", "peak_tps", "bpt",
              "bet", "tet");
  static const char* kRegions[] = {"emea", "amer", "apac", "latam"};
  for (size_t bs : {10, 50, 100}) {
    auto net = BlockchainNetwork::Create(BenchOptions(flow, bs));
    if (!RegisterWorkloadContracts(net.get()).ok() || !net->Start().ok()) {
      return;
    }
    Client* client = net->CreateClient("org1", "loadgen");
    Client* seeder = net->CreateClient("org1", "seeder");
    if (!DeployWorkloadSchema(net.get(), seeder).ok()) {
      std::fprintf(stderr, "schema deploy failed\n");
      return;
    }
    double peak = 0;
    MetricsSnapshot at_peak;
    for (double rate : {100.0, 200.0, 400.0}) {
      int total = static_cast<int>(rate * 2);
      int base = *key;
      *key += total;
      LoadResult r = RunLoad(
          net.get(), client, "complex_join", rate, total, [&](int i) {
            return std::vector<Value>{
                Value::Int(base + i),
                Value::Text(kRegions[(base + i) % 4])};
          });
      if (r.committed_tps > peak) {
        peak = r.committed_tps;
        at_peak = r.node0;
      }
    }
    std::printf("%-10zu %-14.1f %-8.2f %-8.2f %-8.3f\n", bs, peak,
                at_peak.bpt_ms, at_peak.bet_ms, at_peak.tet_ms);
    std::fflush(stdout);
    net->Stop();
  }
}

/// The contract's analytical core, run directly as a client query: join +
/// aggregate over the committed history, per region.
AnalyticsBench JoinBench() {
  AnalyticsBench spec;
  spec.name = "fig6";
  spec.measured_sql =
      "SELECT COALESCE(SUM(o.amount), 0) FROM orders o "
      "JOIN customers c ON o.cust = c.cust_id WHERE c.region = $1";
  for (const char* r : {"emea", "amer", "apac", "latam"}) {
    spec.measured_params.push_back({Value::Text(r)});
  }
  spec.parity_queries.push_back({spec.measured_sql, spec.measured_params});
  // Full scan and typed range scan over the fact table (zone-map path).
  spec.parity_queries.push_back(
      {"SELECT * FROM orders", {std::vector<Value>{}}});
  spec.parity_queries.push_back(
      {"SELECT o.order_id, o.amount FROM orders o "
       "WHERE o.amount >= $1 AND o.amount <= $2",
       {{Value::Int(20), Value::Int(40)}, {Value::Int(80), Value::Int(99)}}});
  // Join emitting every matched pair (no aggregate), dimension-side filter.
  spec.parity_queries.push_back(
      {"SELECT o.order_id, c.region FROM orders o "
       "JOIN customers c ON o.cust = c.cust_id WHERE c.cust_id <= $1",
       {{Value::Int(30)}}});
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_parity = false;
  bool skip_oltp = false;
  std::string json_path = "BENCH_fig6.json";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--check-parity") {
      check_parity = true;
    } else if (a == "--skip-oltp") {
      skip_oltp = true;
    } else {
      json_path = a;
    }
  }
  if (check_parity) return RunParityGate(JoinBench());

  std::printf("Figure 6: complex-join contract\n");
  if (!skip_oltp) {
    int key = 1000000;  // result-table keys; disjoint from seed data
    RunFlow(TransactionFlow::kOrderThenExecute, "(a) order-then-execute",
            &key);
    RunFlow(TransactionFlow::kExecuteOrderParallel,
            "(b) execute-order-in-parallel", &key);
  }
  return RunAnalyticsPhase(JoinBench(), json_path);
}
