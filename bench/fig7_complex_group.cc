// Figure 7: peak throughput and micro metrics vs block size for the
// complex-group contract (aggregate over subgroups, ORDER BY + LIMIT to
// keep the max, write it out), for both flows.
// Paper shape: faster than complex-join (at block size 100: ~1.75x for
// order-then-execute, ~1.6x for execute-order-in-parallel), still well
// below the simple contract.
#include "bench_common.h"

using namespace brdb;
using namespace brdb::bench;

namespace {

void RunFlow(TransactionFlow flow, const char* label, int* key) {
  std::printf("-- %s --\n", label);
  std::printf("%-10s %-14s %-8s %-8s %-8s\n", "blocksize", "peak_tps", "bpt",
              "bet", "tet");
  for (size_t bs : {10, 50, 100}) {
    auto net = BlockchainNetwork::Create(BenchOptions(flow, bs));
    if (!RegisterWorkloadContracts(net.get()).ok() || !net->Start().ok()) {
      return;
    }
    Client* client = net->CreateClient("org1", "loadgen");
    Client* seeder = net->CreateClient("org1", "seeder");
    if (!DeployWorkloadSchema(net.get(), seeder).ok()) {
      std::fprintf(stderr, "schema deploy failed\n");
      return;
    }
    double peak = 0;
    MetricsSnapshot at_peak;
    for (double rate : {100.0, 200.0, 400.0}) {
      int total = static_cast<int>(rate * 2);
      int base = *key;
      *key += total;
      LoadResult r = RunLoad(
          net.get(), client, "complex_group", rate, total, [&](int i) {
            // Group over a sliding customer range.
            int lo = (base + i) % 10;
            return std::vector<Value>{Value::Int(base + i), Value::Int(lo),
                                      Value::Int(lo + 9)};
          });
      if (r.committed_tps > peak) {
        peak = r.committed_tps;
        at_peak = r.node0;
      }
    }
    std::printf("%-10zu %-14.1f %-8.2f %-8.2f %-8.3f\n", bs, peak,
                at_peak.bpt_ms, at_peak.bet_ms, at_peak.tet_ms);
    std::fflush(stdout);
    net->Stop();
  }
}

/// The contract's analytical core as a client query: join + grouped
/// aggregate + ORDER BY over the committed history.
AnalyticsBench GroupBench() {
  AnalyticsBench spec;
  spec.name = "fig7";
  spec.measured_sql =
      "SELECT c.region, SUM(o.amount) AS total FROM orders o "
      "JOIN customers c ON o.cust = c.cust_id "
      "WHERE c.cust_id >= $1 AND c.cust_id <= $2 "
      "GROUP BY c.region ORDER BY total DESC, c.region ASC";
  spec.measured_params = {{Value::Int(0), Value::Int(99)},
                          {Value::Int(10), Value::Int(59)},
                          {Value::Int(25), Value::Int(74)}};
  spec.parity_queries.push_back({spec.measured_sql, spec.measured_params});
  // Grouped aggregate without the join (slot-resolved hash aggregation).
  spec.parity_queries.push_back(
      {"SELECT o.cust, COUNT(*) AS n, SUM(o.amount) AS total FROM orders o "
       "GROUP BY o.cust ORDER BY o.cust ASC",
       {std::vector<Value>{}}});
  // Top-1 (ORDER BY aggregate + LIMIT), the contract's exact statement.
  spec.parity_queries.push_back(
      {"SELECT c.region, SUM(o.amount) AS total FROM orders o "
       "JOIN customers c ON o.cust = c.cust_id "
       "WHERE c.cust_id >= $1 AND c.cust_id <= $2 "
       "GROUP BY c.region ORDER BY total DESC, c.region ASC LIMIT 1",
       {{Value::Int(0), Value::Int(49)}}});
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_parity = false;
  bool skip_oltp = false;
  std::string json_path = "BENCH_fig7.json";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--check-parity") {
      check_parity = true;
    } else if (a == "--skip-oltp") {
      skip_oltp = true;
    } else {
      json_path = a;
    }
  }
  if (check_parity) return RunParityGate(GroupBench());

  std::printf("Figure 7: complex-group contract\n");
  if (!skip_oltp) {
    int key = 2000000;
    RunFlow(TransactionFlow::kOrderThenExecute, "(a) order-then-execute",
            &key);
    RunFlow(TransactionFlow::kExecuteOrderParallel,
            "(b) execute-order-in-parallel", &key);
  }
  return RunAnalyticsPhase(GroupBench(), json_path);
}
