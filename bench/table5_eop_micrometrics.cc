// Table 5: execute-order-in-parallel micro metrics at a fixed arrival
// rate, across block sizes. Adds mt (missing transactions/s) to the Table
// 4 columns. Paper shape: bet lower than order-then-execute (transactions
// are already executing when the block arrives), bct somewhat higher.
#include "bench_common.h"

using namespace brdb;
using namespace brdb::bench;

int main() {
  std::printf(
      "Table 5: execute-order-in-parallel micro metrics (simple contract)\n");
  std::printf("%-6s %-8s %-8s %-8s %-8s %-8s %-8s %-8s %-8s\n", "bs", "brr",
              "bpr", "bpt", "bet", "bct", "tet", "mt", "su%%");

  const size_t kBlockSizes[] = {10, 100, 500};
  const double kRate = 2400;
  int key = 0;

  for (size_t bs : kBlockSizes) {
    auto net = BlockchainNetwork::Create(
        BenchOptions(TransactionFlow::kExecuteOrderParallel, bs));
    if (!RegisterWorkloadContracts(net.get()).ok() || !net->Start().ok()) {
      return 1;
    }
    Client* client = net->CreateClient("org1", "loadgen");
    if (!net->DeployContract("CREATE TABLE kv (k INT PRIMARY KEY, "
                             "payload TEXT)")
             .ok()) {
      return 1;
    }
    int total = static_cast<int>(kRate * 3);
    int base = key;
    key += total;
    LoadResult r = RunLoad(net.get(), client, "simple", kRate, total,
                           [&](int i) { return SimpleArgs(base + i); });
    std::printf(
        "%-6zu %-8.1f %-8.1f %-8.2f %-8.2f %-8.2f %-8.3f %-8.1f %-8.1f\n",
        bs, r.node0.brr, r.node0.bpr, r.node0.bpt_ms, r.node0.bet_ms,
        r.node0.bct_ms, r.node0.tet_ms, r.node0.mt, r.node0.su);
    std::fflush(stdout);
    net->Stop();
  }
  return 0;
}
