// Ablation microbenchmark for the storage ordered index: std::map (the
// seed's red-black tree) vs the B+-tree, on the three operations the
// transaction layer actually performs —
//   * point lookup (equality predicate / unique probe / index-join probe),
//   * range scan (the fig8b workload's predicate reads),
//   * maintenance insert (every AppendVersion touches every table index),
//   * bulk load (CREATE INDEX backfill on a populated table).
// Run via scripts/run_benches.sh, which records the JSON artifact
// BENCH_micro_index.json next to the fig8b trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "storage/btree.h"

namespace brdb {
namespace {

/// Shuffled unique int keys 0..rows-1 (ids equal insertion order).
std::vector<int64_t> ShuffledKeys(int64_t rows, uint64_t seed) {
  std::vector<int64_t> keys(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) keys[static_cast<size_t>(i)] = i;
  Rng rng(seed);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Uniform(i)]);
  }
  return keys;
}

std::unique_ptr<OrderedRowIndex> BuildIndex(IndexBackend backend,
                                            int64_t rows) {
  auto index = OrderedRowIndex::Create(backend);
  std::vector<int64_t> keys = ShuffledKeys(rows, 0x1d);
  for (size_t i = 0; i < keys.size(); ++i) {
    index->Insert(Value::Int(keys[i]), static_cast<RowId>(i));
  }
  return index;
}

void BM_PointLookup(benchmark::State& state, IndexBackend backend) {
  const int64_t rows = state.range(0);
  auto index = BuildIndex(backend, rows);
  Rng rng(7);
  for (auto _ : state) {
    Value key = Value::Int(static_cast<int64_t>(rng.Uniform(rows)));
    size_t found = 0;
    index->Scan(&key, true, &key, true,
                [&](const Value&, const PostingList& ids) {
                  found += ids.size();
                  return true;
                });
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RangeScan(benchmark::State& state, IndexBackend backend) {
  const int64_t rows = state.range(0);
  const int64_t width = rows / 8;  // scan 1/8 of the key space
  auto index = BuildIndex(backend, rows);
  Rng rng(11);
  for (auto _ : state) {
    int64_t lo_key = static_cast<int64_t>(rng.Uniform(rows - width));
    Value lo = Value::Int(lo_key), hi = Value::Int(lo_key + width - 1);
    uint64_t sum = 0;
    index->Scan(&lo, true, &hi, true,
                [&](const Value&, const PostingList& ids) {
                  for (RowId id : ids) sum += id;
                  return true;
                });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * width);
}

void BM_MaintenanceInsert(benchmark::State& state, IndexBackend backend) {
  const int64_t rows = state.range(0);
  auto index = BuildIndex(backend, rows);
  std::vector<int64_t> extra = ShuffledKeys(rows, 0xfeed);
  size_t cursor = 0;
  RowId next_id = static_cast<RowId>(rows);
  for (auto _ : state) {
    // Wrapping over the key pool turns later rounds into duplicate-key
    // posting appends — the same mix AppendVersion produces on real tables.
    index->Insert(Value::Int(extra[cursor]), next_id++);
    if (++cursor == extra.size()) cursor = 0;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_BulkLoad(benchmark::State& state, IndexBackend backend) {
  const int64_t rows = state.range(0);
  std::vector<int64_t> keys = ShuffledKeys(rows, 0xb11c);
  std::vector<std::pair<Value, RowId>> entries;
  entries.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    entries.emplace_back(Value::Int(keys[i]), static_cast<RowId>(i));
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const auto& a, const auto& b) {
                     return a.first.Compare(b.first) < 0;
                   });
  for (auto _ : state) {
    // The batch copy happens outside the measured region so the number is
    // index-build work only (BulkLoad consumes its input).
    state.PauseTiming();
    auto batch = entries;
    state.ResumeTiming();
    auto index = OrderedRowIndex::BulkLoad(backend, std::move(batch));
    benchmark::DoNotOptimize(index->KeyCount());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}

#define INDEX_BENCH(fn)                                               \
  BENCHMARK_CAPTURE(fn, map, IndexBackend::kStdMap)                   \
      ->Arg(4096)                                                     \
      ->Arg(65536);                                                   \
  BENCHMARK_CAPTURE(fn, btree, IndexBackend::kBTree)->Arg(4096)->Arg(65536)

INDEX_BENCH(BM_PointLookup);
INDEX_BENCH(BM_RangeScan);
INDEX_BENCH(BM_MaintenanceInsert);
INDEX_BENCH(BM_BulkLoad);

}  // namespace
}  // namespace brdb

BENCHMARK_MAIN();
