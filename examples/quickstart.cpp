// Quickstart: bring up a 3-organization blockchain relational database,
// deploy a table and a SQL smart contract through the governance flow,
// invoke it, and read the replicated state back from every node.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/blockchain_network.h"

using namespace brdb;

int main() {
  // 1. Bootstrap the permissioned network (§3.7): three organizations,
  // each with an admin, a database peer and an orderer node; Kafka-style
  // ordering; order-then-execute transaction flow.
  NetworkOptions options;
  options.orgs = {"org1", "org2", "org3"};
  options.flow = TransactionFlow::kOrderThenExecute;
  options.orderer_type = OrdererType::kKafka;
  options.orderer_config.block_size = 10;
  options.orderer_config.block_timeout_us = 50000;  // 50 ms
  auto net = BlockchainNetwork::Create(options);
  if (!net->Start().ok()) {
    std::fprintf(stderr, "network failed to start\n");
    return 1;
  }
  std::printf("network up: %zu database nodes\n", net->num_nodes());

  // 2. Deploy schema and contract through the governance contracts:
  // create_deployTx by org1's admin, approve_deployTx by the other
  // admins, submit_deployTx once every organization approved.
  Status st = net->DeployContract(
      "CREATE TABLE greetings (id INT PRIMARY KEY, author TEXT, msg TEXT)");
  if (!st.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", st.ToString().c_str());
    return 1;
  }
  st = net->DeployContract(
      "CREATE PROCEDURE greet(2) AS "
      "n := SELECT COALESCE(MAX(id), 0) + 1 FROM greetings;"
      "INSERT INTO greetings VALUES ($n, $1, $2)");
  if (!st.ok()) {
    std::fprintf(stderr, "contract deploy failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("schema and contract deployed with all-org approval\n");

  // 3. A client invokes the contract; the transaction is signed, ordered
  // into a block, executed concurrently on every node, and committed in
  // the same serializable order everywhere.
  Client* alice = net->CreateClient("org1", "alice");
  for (const char* msg : {"hello, ledger", "replicated everywhere",
                          "ordered by consensus"}) {
    auto txid = alice->Invoke("greet",
                              {Value::Text("alice"), Value::Text(msg)});
    if (!txid.ok()) {
      std::fprintf(stderr, "invoke failed: %s\n",
                   txid.status().ToString().c_str());
      return 1;
    }
    Status commit = alice->WaitForDecisionOnAllNodes(txid.value());
    std::printf("tx %.12s... -> %s\n", txid.value().c_str(),
                commit.ToString().c_str());
  }

  // 4. Read back from every node: all replicas agree.
  for (size_t i = 0; i < net->num_nodes(); ++i) {
    auto rows = net->node(i)->Query(
        "alice", "SELECT id, msg FROM greetings ORDER BY id");
    if (!rows.ok()) {
      std::fprintf(stderr, "query failed\n");
      return 1;
    }
    std::printf("%s:\n", net->node(i)->name().c_str());
    for (const Row& row : rows.value().rows) {
      std::printf("  %lld | %s\n",
                  static_cast<long long>(row[0].AsInt()),
                  row[1].AsText().c_str());
    }
  }

  // 5. Checkpoints: every node computed the same write-set hash per block.
  BlockNum h = net->node(0)->Height();
  size_t agree = 0;
  for (size_t i = 0; i < net->num_nodes(); ++i) {
    if (net->node(i)->checkpoints()->LocalHash(h) ==
        net->node(0)->checkpoints()->LocalHash(h)) {
      ++agree;
    }
  }
  std::printf("height %llu, write-set hash: %.16s... (identical on %zu/%zu "
              "nodes)\n",
              static_cast<unsigned long long>(h),
              net->node(0)->checkpoints()->LocalHash(h).c_str(), agree,
              net->num_nodes());
  net->Stop();
  return 0;
}
