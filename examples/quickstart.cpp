// Quickstart: bring up a 3-organization blockchain relational database,
// deploy a table and a SQL smart contract through the governance flow,
// pipeline invocations through the asynchronous Session API, and read the
// replicated state back with a prepared statement.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/blockchain_network.h"

using namespace brdb;

int main() {
  // 1. Bootstrap the permissioned network (§3.7): three organizations,
  // each with an admin, a database peer and an orderer node; Kafka-style
  // ordering; order-then-execute transaction flow.
  NetworkOptions options;
  options.orgs = {"org1", "org2", "org3"};
  options.flow = TransactionFlow::kOrderThenExecute;
  options.orderer_type = OrdererType::kKafka;
  options.orderer_config.block_size = 10;
  options.orderer_config.block_timeout_us = 50000;  // 50 ms
  auto net = BlockchainNetwork::Create(options);
  if (!net->Start().ok()) {
    std::fprintf(stderr, "network failed to start\n");
    return 1;
  }
  std::printf("network up: %zu database nodes\n", net->num_nodes());

  // 2. Deploy schema and contract through the governance contracts:
  // create_deployTx by org1's admin, approve_deployTx by the other
  // admins, submit_deployTx once every organization approved.
  Status st = net->DeployContract(
      "CREATE TABLE greetings (id INT PRIMARY KEY, author TEXT, msg TEXT)");
  if (!st.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", st.ToString().c_str());
    return 1;
  }
  // The procedure takes the id explicitly so concurrent invocations are
  // independent — a MAX(id)+1 read-modify-write would serialize-conflict
  // when pipelined into one block (SSI aborts all but one, by design).
  st = net->DeployContract(
      "CREATE PROCEDURE greet(3) AS "
      "INSERT INTO greetings VALUES ($1, $2, $3)");
  if (!st.ok()) {
    std::fprintf(stderr, "contract deploy failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::printf("schema and contract deployed with all-org approval\n");

  // 3. The asynchronous Session API: one batch signs and submits all three
  // invocations in a single frame, and each TxnHandle is a future over the
  // network's decision — nothing blocks until we choose to wait.
  Session* alice = net->CreateSession("org1", "alice");
  std::vector<Invocation> batch;
  int64_t next_id = 1;
  for (const char* msg : {"hello, ledger", "replicated everywhere",
                          "ordered by consensus"}) {
    batch.push_back(Invocation{
        "greet",
        {Value::Int(next_id++), Value::Text("alice"), Value::Text(msg)}});
  }
  std::vector<TxnHandle> handles = alice->SubmitBatch(std::move(batch));
  for (TxnHandle& h : handles) {
    if (!h.submit_status().ok()) {
      std::fprintf(stderr, "submit failed: %s\n",
                   h.submit_status().ToString().c_str());
      return 1;
    }
  }
  // All three are in flight; now collect the decisions.
  for (TxnHandle& h : handles) {
    Status commit = h.WaitAllNodes();
    std::printf("tx %.12s... -> %s (block %llu)\n", h.txid().c_str(),
                commit.ToString().c_str(),
                static_cast<unsigned long long>(h.CommitBlock()));
  }

  // 4. Read back through a prepared statement: parsed and validated once,
  // bound per execution, served by a round-robin-selected healthy peer.
  auto prep =
      alice->Prepare("SELECT id, msg FROM greetings WHERE id >= $1 "
                     "ORDER BY id");
  if (!prep.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prep.status().ToString().c_str());
    return 1;
  }
  std::printf("prepared statement takes %d parameter(s)\n",
              prep.value().param_count());
  auto rows = alice->Query(prep.value(), {Value::Int(1)});
  if (!rows.ok()) {
    std::fprintf(stderr, "query failed\n");
    return 1;
  }
  for (const Row& row : rows.value().rows) {
    std::printf("  %lld | %s\n", static_cast<long long>(row[0].AsInt()),
                row[1].AsText().c_str());
  }

  // 5. Checkpoints: every node computed the same write-set hash per block —
  // and every byte of client traffic above crossed the wire codec.
  BlockNum h = net->node(0)->Height();
  size_t agree = 0;
  for (size_t i = 0; i < net->num_nodes(); ++i) {
    if (net->node(i)->checkpoints()->LocalHash(h) ==
        net->node(0)->checkpoints()->LocalHash(h)) {
      ++agree;
    }
  }
  std::printf("height %llu, write-set hash: %.16s... (identical on %zu/%zu "
              "nodes)\n",
              static_cast<unsigned long long>(h),
              net->node(0)->checkpoints()->LocalHash(h).c_str(), agree,
              net->num_nodes());
  const TransportCounters& counters = net->transport()->counters();
  std::printf("transport: %llu frames sent, %llu received (%llu + %llu "
              "bytes through wire/codec)\n",
              static_cast<unsigned long long>(counters.frames_sent.load()),
              static_cast<unsigned long long>(
                  counters.frames_received.load()),
              static_cast<unsigned long long>(counters.bytes_sent.load()),
              static_cast<unsigned long long>(
                  counters.bytes_received.load()));
  net->Stop();
  return 0;
}
