// Interactive SQL shell over a blockchain relational database network,
// built on the asynchronous Session API.
//
// Reads statements from stdin (one per line, or piped). Verbs:
//   SELECT ...            read-only query on a healthy peer (round-robin)
//   PROV SELECT ...       provenance query (all row versions + pseudo-cols)
//   CALL name(arg, ...)   invoke a smart contract as the shell's session
//   DEPLOY <sql>          run the full governance flow for DDL/procedures
//   PREPARE name <sql>    parse/validate once, keep a bindable handle
//   EXEC name(arg, ...)   execute a prepared statement with parameters
//   .height / .checkpoints / .frames / .quit    shell meta-commands
//
// Example session (pipe or type):
//   DEPLOY CREATE TABLE t (id INT PRIMARY KEY, v INT)
//   DEPLOY CREATE PROCEDURE put(2) AS INSERT INTO t VALUES ($1, $2)
//   CALL put(1, 100)
//   PREPARE by_id SELECT v FROM t WHERE id = $1
//   EXEC by_id(1)
//   PROV SELECT id, v, creator FROM t
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>

#include "core/blockchain_network.h"

using namespace brdb;

namespace {

void PrintResult(const sql::ResultSet& rs) {
  if (!rs.columns.empty()) {
    for (const auto& c : rs.columns) std::printf("%-14s ", c.c_str());
    std::printf("\n");
    for (size_t i = 0; i < rs.columns.size(); ++i) std::printf("%-14s ", "---");
    std::printf("\n");
  }
  for (const Row& row : rs.rows) {
    for (const Value& v : row) std::printf("%-14s ", v.ToString().c_str());
    std::printf("\n");
  }
  if (rs.affected > 0) {
    std::printf("(%lld rows affected)\n",
                static_cast<long long>(rs.affected));
  } else {
    std::printf("(%zu rows)\n", rs.rows.size());
  }
}

/// Parse "name(arg1, arg2, ...)" with int / 'text' / double literals.
bool ParseCall(const std::string& input, std::string* name,
               std::vector<Value>* args) {
  size_t open = input.find('(');
  size_t close = input.rfind(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    return false;
  }
  *name = input.substr(0, open);
  while (!name->empty() && std::isspace(name->back())) name->pop_back();
  std::string body = input.substr(open + 1, close - open - 1);
  std::stringstream ss(body);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    size_t b = tok.find_first_not_of(" \t");
    size_t e = tok.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    tok = tok.substr(b, e - b + 1);
    if (tok.size() >= 2 && tok.front() == '\'' && tok.back() == '\'') {
      args->push_back(Value::Text(tok.substr(1, tok.size() - 2)));
    } else if (tok.find('.') != std::string::npos) {
      args->push_back(Value::Double(std::strtod(tok.c_str(), nullptr)));
    } else {
      args->push_back(Value::Int(std::strtoll(tok.c_str(), nullptr, 10)));
    }
  }
  return !name->empty();
}

}  // namespace

int main() {
  NetworkOptions options;
  options.orgs = {"org1", "org2", "org3"};
  options.flow = TransactionFlow::kOrderThenExecute;
  options.orderer_config.block_size = 10;
  options.orderer_config.block_timeout_us = 50000;
  auto net = BlockchainNetwork::Create(options);
  if (!net->Start().ok()) {
    std::fprintf(stderr, "failed to start network\n");
    return 1;
  }
  Session* me = net->CreateSession("org1", "shell");
  std::map<std::string, PreparedStatement> prepared;
  std::printf("brdb shell — 3-organization network up. Commands: SELECT, "
              "PROV, CALL, DEPLOY, PREPARE, EXEC, .height, .checkpoints, "
              ".frames, .quit\n");

  std::string line;
  while (std::printf("brdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".height") {
      for (size_t i = 0; i < net->num_nodes(); ++i) {
        std::printf("%s: height %llu\n", net->node(i)->name().c_str(),
                    static_cast<unsigned long long>(net->node(i)->Height()));
      }
      continue;
    }
    if (line == ".checkpoints") {
      BlockNum h = net->node(0)->Height();
      for (size_t i = 0; i < net->num_nodes(); ++i) {
        std::printf("%s: %.16s...\n", net->node(i)->name().c_str(),
                    net->node(i)->checkpoints()->LocalHash(h).c_str());
      }
      continue;
    }
    if (line == ".frames") {
      const TransportCounters& c = net->transport()->counters();
      std::printf("codec frames: %llu sent / %llu received, bytes: %llu / "
                  "%llu\n",
                  static_cast<unsigned long long>(c.frames_sent.load()),
                  static_cast<unsigned long long>(c.frames_received.load()),
                  static_cast<unsigned long long>(c.bytes_sent.load()),
                  static_cast<unsigned long long>(c.bytes_received.load()));
      continue;
    }
    if (line.rfind("DEPLOY ", 0) == 0 || line.rfind("deploy ", 0) == 0) {
      Status st = net->DeployContract(line.substr(7));
      std::printf("%s\n", st.ToString().c_str());
      continue;
    }
    if (line.rfind("CALL ", 0) == 0 || line.rfind("call ", 0) == 0) {
      std::string name;
      std::vector<Value> args;
      if (!ParseCall(line.substr(5), &name, &args)) {
        std::printf("usage: CALL name(arg, ...)\n");
        continue;
      }
      TxnHandle handle = me->Submit(name, std::move(args));
      if (!handle.submit_status().ok()) {
        std::printf("submit failed: %s\n",
                    handle.submit_status().ToString().c_str());
        continue;
      }
      Status st = handle.WaitAllNodes();
      std::printf("tx %.12s... -> %s (block %llu)\n", handle.txid().c_str(),
                  st.ToString().c_str(),
                  static_cast<unsigned long long>(handle.CommitBlock()));
      continue;
    }
    if (line.rfind("PREPARE ", 0) == 0 || line.rfind("prepare ", 0) == 0) {
      std::string rest = line.substr(8);
      size_t space = rest.find(' ');
      if (space == std::string::npos) {
        std::printf("usage: PREPARE name SELECT ...\n");
        continue;
      }
      std::string name = rest.substr(0, space);
      auto stmt = me->Prepare(rest.substr(space + 1));
      if (!stmt.ok()) {
        std::printf("prepare failed: %s\n", stmt.status().ToString().c_str());
        continue;
      }
      std::printf("prepared '%s' (%d parameter(s))\n", name.c_str(),
                  stmt.value().param_count());
      prepared[name] = std::move(stmt).value();
      continue;
    }
    if (line.rfind("EXEC ", 0) == 0 || line.rfind("exec ", 0) == 0) {
      std::string name;
      std::vector<Value> args;
      if (!ParseCall(line.substr(5), &name, &args)) {
        std::printf("usage: EXEC name(arg, ...)\n");
        continue;
      }
      auto it = prepared.find(name);
      if (it == prepared.end()) {
        std::printf("no prepared statement named '%s'\n", name.c_str());
        continue;
      }
      auto r = me->Query(it->second, args);
      if (r.ok()) {
        PrintResult(r.value());
      } else {
        std::printf("%s\n", r.status().ToString().c_str());
      }
      continue;
    }
    if (line.rfind("PROV ", 0) == 0 || line.rfind("prov ", 0) == 0) {
      auto r = me->ProvenanceQuery(line.substr(5));
      if (r.ok()) {
        PrintResult(r.value());
      } else {
        std::printf("%s\n", r.status().ToString().c_str());
      }
      continue;
    }
    auto r = me->Query(line);
    if (r.ok()) {
      PrintResult(r.value());
    } else {
      std::printf("%s\n", r.status().ToString().c_str());
    }
  }
  net->Stop();
  return 0;
}
