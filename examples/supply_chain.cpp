// Supply-chain provenance (paper §4.2, Table 3): suppliers and a
// manufacturer update shared invoices through smart contracts; auditors
// then run provenance queries that join historical row versions with the
// pgledger system table to answer "who changed what, when".
#include <cstdio>

#include "core/blockchain_network.h"

using namespace brdb;

namespace {

void Must(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

Status InvokeAndWait(Client* c, const std::string& contract,
                     std::vector<Value> args) {
  auto txid = c->Invoke(contract, std::move(args));
  if (!txid.ok()) return txid.status();
  return c->WaitForDecisionOnAllNodes(txid.value());
}

}  // namespace

int main() {
  NetworkOptions options;
  options.orgs = {"supplier-co", "manufacturer-co", "logistics-co"};
  options.flow = TransactionFlow::kExecuteOrderParallel;
  options.orderer_config.block_size = 10;
  options.orderer_config.block_timeout_us = 50000;
  auto net = BlockchainNetwork::Create(options);
  Must(net->Start(), "start");

  Must(net->DeployContract(
           "CREATE TABLE invoices (invoice_id INT PRIMARY KEY, "
           "supplier TEXT, amount INT, state TEXT, CHECK (amount >= 0))"),
       "deploy invoices");
  Must(net->DeployContract(
           "CREATE PROCEDURE create_invoice(3) AS "
           "INSERT INTO invoices VALUES ($1, $2, $3, 'issued')"),
       "deploy create_invoice");
  Must(net->DeployContract(
           "CREATE PROCEDURE revise_amount(2) AS "
           "cur := SELECT state FROM invoices WHERE invoice_id = $1;"
           "REQUIRE $cur = 'issued';"
           "UPDATE invoices SET amount = $2 WHERE invoice_id = $1"),
       "deploy revise_amount");
  Must(net->DeployContract(
           "CREATE PROCEDURE accept_invoice(1) AS "
           "UPDATE invoices SET state = 'accepted' WHERE invoice_id = $1"),
       "deploy accept_invoice");

  Client* supplier = net->CreateClient("supplier-co", "supplier1");
  Client* manufacturer = net->CreateClient("manufacturer-co", "buyer1");

  // The invoice lifecycle: issued by the supplier, revised twice, then
  // accepted by the manufacturer. Every step is a signed transaction.
  Must(InvokeAndWait(supplier, "create_invoice",
                     {Value::Int(1001), Value::Text("supplier1"),
                      Value::Int(5000)}),
       "create");
  Must(InvokeAndWait(supplier, "revise_amount",
                     {Value::Int(1001), Value::Int(5400)}),
       "revise 1");
  Must(InvokeAndWait(supplier, "revise_amount",
                     {Value::Int(1001), Value::Int(5150)}),
       "revise 2");
  Must(InvokeAndWait(manufacturer, "accept_invoice", {Value::Int(1001)}),
       "accept");

  // A REQUIRE guard: revising after acceptance must fail on every node.
  Status late = InvokeAndWait(supplier, "revise_amount",
                              {Value::Int(1001), Value::Int(1)});
  std::printf("revision after acceptance: %s (expected abort)\n",
              late.ToString().c_str());

  // Current state: one live row.
  auto live = manufacturer->Query(
      "SELECT amount, state FROM invoices WHERE invoice_id = 1001");
  Must(live.status(), "live query");
  std::printf("\nlive invoice: amount=%lld state=%s\n",
              static_cast<long long>(live.value().rows[0][0].AsInt()),
              live.value().rows[0][1].AsText().c_str());

  // Table 3-style audit #1: full history of invoice 1001 with the user and
  // contract that superseded each version (join on the deleter txn id).
  auto history = manufacturer->ProvenanceQuery(
      "SELECT i.amount, i.state, l.username, l.contract "
      "FROM invoices i JOIN pgledger l ON i.xmax = l.local_txn "
      "WHERE i.invoice_id = 1001 ORDER BY i.deleter ASC");
  Must(history.status(), "history query");
  std::printf("\naudit: superseded versions of invoice 1001\n");
  std::printf("%-8s %-10s %-12s %-16s\n", "amount", "state", "changed_by",
              "via_contract");
  for (const Row& row : history.value().rows) {
    std::printf("%-8lld %-10s %-12s %-16s\n",
                static_cast<long long>(row[0].AsInt()),
                row[1].AsText().c_str(), row[2].AsText().c_str(),
                row[3].AsText().c_str());
  }

  // Table 3-style audit #2: which invoice versions did supplier1's
  // transactions produce (join on the creator txn id), block by block?
  auto by_supplier = manufacturer->ProvenanceQuery(
      "SELECT l.block_num, i.amount, i.state "
      "FROM invoices i JOIN pgledger l ON i.xmin = l.local_txn "
      "WHERE l.username = 'supplier1' AND l.status = 'committed' "
      "ORDER BY l.block_num ASC");
  Must(by_supplier.status(), "by-supplier query");
  std::printf("\naudit: versions created by supplier1's transactions\n");
  std::printf("%-8s %-8s %-10s\n", "block", "amount", "state");
  for (const Row& row : by_supplier.value().rows) {
    std::printf("%-8lld %-8lld %-10s\n",
                static_cast<long long>(row[0].AsInt()),
                static_cast<long long>(row[1].AsInt()),
                row[2].AsText().c_str());
  }

  net->Stop();
  return 0;
}
