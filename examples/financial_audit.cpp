// Financial services scenario (paper §1 motivation): interbank accounts
// with balance-guarded transfers, serializable isolation under concurrent
// conflicting transactions, and compliance reporting that combines ledger
// metadata with analytical SQL — the workload class the paper argues is
// "impossible to implement efficiently" on key-value blockchains.
#include <cstdio>

#include "core/blockchain_network.h"

using namespace brdb;

namespace {
void Must(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  NetworkOptions options;
  options.orgs = {"bank-a", "bank-b", "clearing-house"};
  options.flow = TransactionFlow::kOrderThenExecute;
  options.orderer_type = OrdererType::kRaft;  // CFT ordering
  options.orderer_config.block_size = 20;
  options.orderer_config.block_timeout_us = 50000;
  auto net = BlockchainNetwork::Create(options);
  Must(net->Start(), "start");

  Must(net->DeployContract(
           "CREATE TABLE accounts (acct INT PRIMARY KEY, bank TEXT, "
           "balance INT, CHECK (balance >= 0))"),
       "deploy accounts");
  Must(net->DeployContract(
           "CREATE INDEX idx_bank ON accounts (bank)"),
       "deploy index");
  Must(net->DeployContract(
           "CREATE PROCEDURE open_account(3) AS "
           "INSERT INTO accounts VALUES ($1, $2, $3)"),
       "deploy open_account");
  Must(net->DeployContract(
           "CREATE PROCEDURE transfer(3) AS "
           "bal := SELECT balance FROM accounts WHERE acct = $1;"
           "REQUIRE $bal >= $3;"
           "UPDATE accounts SET balance = balance - $3 WHERE acct = $1;"
           "UPDATE accounts SET balance = balance + $3 WHERE acct = $2"),
       "deploy transfer");

  Client* teller_a = net->CreateClient("bank-a", "teller-a");
  Client* teller_b = net->CreateClient("bank-b", "teller-b");

  // Open accounts: 2 at bank-a, 2 at bank-b.
  struct Acct {
    int id;
    const char* bank;
    int balance;
  };
  for (const Acct& a : {Acct{1, "bank-a", 1000}, Acct{2, "bank-a", 500},
                        Acct{3, "bank-b", 800}, Acct{4, "bank-b", 200}}) {
    auto t = teller_a->Invoke("open_account",
                              {Value::Int(a.id), Value::Text(a.bank),
                               Value::Int(a.balance)});
    Must(t.status(), "open");
    Must(teller_a->WaitForDecisionOnAllNodes(t.value()), "open wait");
  }

  // Fire concurrent transfers, some of which conflict on the same account
  // within a block. SSI + block-order ww resolution guarantees every node
  // commits exactly the same subset.
  std::vector<std::string> txids;
  struct Xfer {
    Client* who;
    int from, to, amount;
  };
  const Xfer xfers[] = {Xfer{teller_a, 1, 3, 100}, Xfer{teller_b, 2, 4, 75},
                        Xfer{teller_a, 3, 2, 300}, Xfer{teller_b, 4, 1, 50},
                        Xfer{teller_a, 2, 3, 9999},  // exceeds balance
                        Xfer{teller_b, 1, 4, 25}};
  int n = 0;
  for (const Xfer& x : xfers) {
    auto t = x.who->Invoke("transfer", {Value::Int(x.from), Value::Int(x.to),
                                        Value::Int(x.amount)});
    if (t.ok()) txids.push_back(t.value());
    // Pair up submissions: some transfers run concurrently (and may
    // conflict), others land in later blocks.
    if (++n % 2 == 0 && !txids.empty()) {
      (void)teller_a->WaitForDecisionOnAllNodes(txids.back(), 20000000);
    }
  }
  int committed = 0, aborted = 0;
  for (const auto& t : txids) {
    Status st = teller_a->WaitForDecisionOnAllNodes(t, 20000000);
    st.ok() ? ++committed : ++aborted;
  }
  net->WaitIdle();
  std::printf("transfers: %d committed, %d aborted (conflicts/guards)\n",
              committed, aborted);

  // Invariant: money is conserved on every replica.
  for (size_t i = 0; i < net->num_nodes(); ++i) {
    auto r = net->node(i)->Query("teller-a",
                                 "SELECT SUM(balance) FROM accounts");
    Must(r.status(), "sum");
    std::printf("%s total balance: %lld\n", net->node(i)->name().c_str(),
                static_cast<long long>(r.value().Scalar().value().AsInt()));
  }

  // Compliance report: per-bank balances (the analytical SQL the paper's
  // intro motivates), plus an audit of every committed transfer from the
  // ledger table.
  auto report = teller_a->Query(
      "SELECT bank, COUNT(*) AS accounts, SUM(balance) AS total "
      "FROM accounts GROUP BY bank ORDER BY bank");
  Must(report.status(), "report");
  std::printf("\nper-bank position:\n%-16s %-10s %-10s\n", "bank", "accounts",
              "total");
  for (const Row& row : report.value().rows) {
    std::printf("%-16s %-10lld %-10lld\n", row[0].AsText().c_str(),
                static_cast<long long>(row[1].AsInt()),
                static_cast<long long>(row[2].AsInt()));
  }

  auto audit = teller_a->Query(
      "SELECT username, COUNT(*) AS txns FROM pgledger "
      "WHERE contract = 'transfer' AND status = 'committed' "
      "GROUP BY username ORDER BY username");
  Must(audit.status(), "audit");
  std::printf("\ncommitted transfers by user (from pgledger):\n");
  for (const Row& row : audit.value().rows) {
    std::printf("  %s: %lld\n", row[0].AsText().c_str(),
                static_cast<long long>(row[1].AsInt()));
  }

  net->Stop();
  return 0;
}
