// Byzantine behaviour and tamper detection (paper §3.5): a four-
// organization network where one peer withholds commits. The honest
// majority keeps making progress, and checkpoint comparison exposes the
// misbehaving organization. Also demonstrates block-store tamper detection
// via the hash chain.
#include <cstdio>
#include <filesystem>

#include "core/blockchain_network.h"
#include "ledger/block_store.h"

using namespace brdb;

namespace {
void Must(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  NetworkOptions options;
  options.orgs = {"org1", "org2", "org3", "org-evil"};
  options.flow = TransactionFlow::kOrderThenExecute;
  options.orderer_config.block_size = 5;
  options.orderer_config.block_timeout_us = 50000;
  options.byzantine_nodes = {3};  // org-evil's peer skips commits (§3.5(3))
  auto net = BlockchainNetwork::Create(options);

  Must(net->RegisterNativeContract(
           "put", [](ContractContext* ctx) -> Status {
             auto r = ctx->Execute("INSERT INTO records VALUES ($1, $2)",
                                   ctx->args());
             return r.ok() ? Status::OK() : r.status();
           }),
       "register");
  Must(net->Start(), "start");
  Must(net->DeployContract(
           "CREATE TABLE records (id INT PRIMARY KEY, v INT)"),
       "deploy");

  Client* alice = net->CreateClient("org1", "alice");
  for (int i = 0; i < 10; ++i) {
    auto t = alice->Invoke("put", {Value::Int(i), Value::Int(i * 7)});
    Must(t.status(), "invoke");
    // Majority commit succeeds although org-evil diverges.
    Must(alice->WaitForCommit(t.value()), "commit");
  }
  net->WaitIdle();

  std::printf("liveness: honest nodes committed %llu transactions each\n",
              static_cast<unsigned long long>(
                  net->node(0)->metrics()->txns_committed()));

  // Checkpoint comparison exposes the byzantine peer.
  std::printf("\ncheckpoint divergences observed by honest nodes:\n");
  for (size_t i = 0; i < 3; ++i) {
    auto divs = net->node(i)->checkpoints()->Divergences();
    std::printf("  %s: %zu divergences", net->node(i)->name().c_str(),
                divs.size());
    if (!divs.empty()) {
      std::printf(" (first: peer %s at block %llu)", divs[0].peer.c_str(),
                  static_cast<unsigned long long>(divs[0].block));
    }
    std::printf("\n");
  }

  // Honest nodes agree with each other.
  BlockNum h = net->node(0)->Height();
  bool honest_agree =
      net->node(0)->checkpoints()->LocalHash(h) ==
          net->node(1)->checkpoints()->LocalHash(h) &&
      net->node(1)->checkpoints()->LocalHash(h) ==
          net->node(2)->checkpoints()->LocalHash(h);
  std::printf("honest nodes' write-set hashes agree at height %llu: %s\n",
              static_cast<unsigned long long>(h),
              honest_agree ? "yes" : "NO");
  net->Stop();

  // Part 2: tampering with a persisted block store is detected on load
  // (§3.5(6) — forging the chain requires the orderer and client keys).
  // The store is a directory of CRC-framed segments; flip one bit inside an
  // interior record and the reload refuses the whole log.
  auto dir = std::filesystem::temp_directory_path() / "byz_demo.blocks";
  std::filesystem::remove_all(dir);
  {
    auto store = BlockStore::Open(dir.string());
    Must(store.status(), "open store");
    Identity orderer =
        Identity::Create("org1", "orderer1", PrincipalRole::kOrderer);
    Identity client = Identity::Create("org1", "alice",
                                       PrincipalRole::kClient);
    std::vector<Transaction> txns;
    txns.push_back(Transaction::MakeOrderThenExecute(
        client, "tx-1", "put", {Value::Int(1), Value::Int(100)}));
    Block b1(1, "", std::move(txns), "demo", {});
    b1.AddOrdererSignature(orderer);
    Must(store.value()->Append(b1), "append");
    Block b2(2, b1.hash(), {}, "demo", {});
    b2.AddOrdererSignature(orderer);
    Must(store.value()->Append(b2), "append");
  }
  {
    auto segment = dir / "0000000001.seg";
    std::FILE* f = std::fopen(segment.string().c_str(), "r+b");
    std::fseek(f, 80, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 80, SEEK_SET);
    std::fputc(c ^ 0x1, f);  // flip one bit in the first stored block
    std::fclose(f);
  }
  auto tampered = BlockStore::Open(dir.string());
  std::printf("\nreloading a tampered block store: %s\n",
              tampered.status().ToString().c_str());
  std::filesystem::remove_all(dir);
  return 0;
}
